// Package platform is the registry of machine descriptions PolyUFC can
// target. A Backend is a declarative, schema-versioned description of one
// machine — topology, cache hierarchy, uncore frequency range and cap
// step, and the hidden truth/simulator parameters — serializable to JSON
// (platforms/*.json) so new machines are added as data, not code
// (Kerncraft-style machine files). A Calibration is the persisted result
// of the one-time roofline micro-benchmark fit over a Backend: the
// Table-I Constants plus Sec. V curve fits, stamped with provenance (fit
// date, seed, fit residuals) so operators can tell which machine model
// served a request.
//
// The package is a leaf: hw constructs Platforms/Machines from a Backend,
// roofline calibrates one and resolves the (Backend, Platform, Constants)
// triple into a Target, and everything above consumes that handle.
package platform

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
)

// SchemaVersion is the current backend-description schema (v2:
// topology-aware — a sockets array plus an interconnect section).
// SchemaVersionV1 single-socket files are still read and load as a
// 1-socket topology; any other "schema" value is rejected at parse time.
const (
	SchemaVersionV1 = 1
	SchemaVersion   = 2
)

// Truth holds the hidden machine constants the hardware simulator uses.
// They are not exported to the analytic model; PolyUFC must recover
// equivalent information through roofline micro-benchmarking. In a
// backend description they play the role of the simulator's silicon.
type Truth struct {
	// FlopsPerCycle is the per-core FPU throughput (AVX FMA lanes).
	FlopsPerCycle float64 `json:"flops_per_cycle"`
	// HitLatencyNs is the load-to-use latency per cache level.
	HitLatencyNs []float64 `json:"hit_latency_ns"`
	// DRAMLatCoefNsGHz and DRAMLatBaseNs give the per-miss DRAM service
	// latency a/f + b (ns, f in GHz): the uncore clock gates the path.
	DRAMLatCoefNsGHz float64 `json:"dram_lat_coef_ns_ghz"`
	DRAMLatBaseNs    float64 `json:"dram_lat_base_ns"`
	// Sustained DRAM bandwidth follows the saturating interconnect curve
	// bw(f) = BWPeakGBs * f / (f + BWKneeGHz): per-byte service time is
	// then exactly hyperbolic in f (a/f + b), the shape the paper observes
	// and fits on real uncore hardware; beyond the knee, extra uncore
	// frequency is over-provisioning (Sec. II-F).
	BWPeakGBs float64 `json:"bw_peak_gbs"`
	BWKneeGHz float64 `json:"bw_knee_ghz"`
	// MLP is the per-core memory-level parallelism (outstanding misses);
	// MLPSystem caps the whole-chip total.
	MLP       float64 `json:"mlp"`
	MLPSystem float64 `json:"mlp_system"`
	// ILP overlaps cache-hit latencies with computation.
	ILP float64 `json:"ilp"`
	// Overlap is the fraction of the smaller of compute/memory time not
	// hidden under the larger.
	Overlap float64 `json:"overlap"`
	// PConstW is constant (static + board) power.
	PConstW float64 `json:"p_const_w"`
	// CoreIdleWPerGHz is core clock-tree power per GHz (paid whenever the
	// cores are clocked, even when stalled on memory).
	CoreIdleWPerGHz float64 `json:"core_idle_w_per_ghz"`
	// CoreJPerFlop is dynamic core energy per arithmetic operation.
	CoreJPerFlop float64 `json:"core_j_per_flop"`
	// UncoreIdleWPerGHz is uncore clock-tree power per GHz, always paid.
	UncoreIdleWPerGHz float64 `json:"uncore_idle_w_per_ghz"`
	// UncoreActWPerGHz and UncoreActBaseW scale with memory utilization:
	// P_uncore_dyn = (act*f + base) * utilization.
	UncoreActWPerGHz float64 `json:"uncore_act_w_per_ghz"`
	UncoreActBaseW   float64 `json:"uncore_act_base_w"`
}

// CacheLevel describes one level of the cache hierarchy.
type CacheLevel struct {
	Name      string `json:"name"`
	SizeBytes int64  `json:"size_bytes"`
	LineSize  int64  `json:"line_size"`
	Assoc     int64  `json:"assoc"`
}

// Backend is the declarative description of one machine: everything the
// constructors in hw hardcoded, as data.
type Backend struct {
	// Schema is the description format version (SchemaVersion).
	Schema int `json:"schema"`
	// Name is the canonical registry name ("BDW"); Aliases resolve too
	// (lookups are case-insensitive either way).
	Name    string   `json:"name"`
	Aliases []string `json:"aliases,omitempty"`
	CPU     string   `json:"cpu"`
	// Released is the launch year (Table III).
	Released int `json:"released"`
	// Paper marks the two Table-III evaluation machines; golden outputs
	// sweep exactly the paper set.
	Paper   bool `json:"paper,omitempty"`
	Cores   int  `json:"cores"`
	Threads int  `json:"threads"`
	// Core and uncore frequency ranges in GHz.
	CoreMinGHz   float64 `json:"core_min_ghz"`
	CoreMaxGHz   float64 `json:"core_max_ghz"`
	CoreBaseGHz  float64 `json:"core_base_ghz"`
	UncoreMinGHz float64 `json:"uncore_min_ghz"`
	UncoreMaxGHz float64 `json:"uncore_max_ghz"`
	// CapStepGHz is the uncore cap granularity; the cap grid is anchored
	// at UncoreMinGHz and need not divide the range evenly.
	CapStepGHz float64 `json:"cap_step_ghz"`
	// CapLatencySec is the cost of one cap change (Sec. VII-F).
	CapLatencySec float64 `json:"cap_latency_sec"`
	// HasUncoreRAPL reports whether the uncore energy zone is readable
	// (false on BDW, footnote 15).
	HasUncoreRAPL bool         `json:"has_uncore_rapl"`
	Cache         []CacheLevel `json:"cache"`
	Truth         Truth        `json:"truth"`
	// Sockets is the schema-v2 topology: one entry per socket, each with
	// its own uncore domain, cap grid and truth constants. Empty for v1
	// descriptions (the top-level fields above are then the one socket).
	// Normalize mirrors socket 0 into the top-level fields so v1
	// consumers keep working; all omitempty, so v1 content hashes are
	// unchanged by this schema revision.
	Sockets []Socket `json:"sockets,omitempty"`
	// Interconnect models the inter-socket link; required when the
	// topology has more than one socket.
	Interconnect *Interconnect `json:"interconnect,omitempty"`
	// Nodes models an N-node cluster of identical replicas of this
	// topology sharing one calibration; 0 (absent) means one node.
	Nodes int `json:"nodes,omitempty"`
}

// Validate checks a description for internal consistency and returns a
// field-level error naming the first violation.
func (b *Backend) Validate() error {
	if b == nil {
		return fmt.Errorf("platform: nil backend")
	}
	switch b.Schema {
	case SchemaVersionV1:
		if len(b.Sockets) > 0 || b.Interconnect != nil || b.Nodes != 0 {
			return fmt.Errorf("platform: backend %q: schema: version %d descriptions cannot carry sockets/interconnect/nodes (re-export as schema %d)",
				b.Name, SchemaVersionV1, SchemaVersion)
		}
	case SchemaVersion:
		if len(b.Sockets) == 0 {
			return fmt.Errorf("platform: backend %q: sockets: schema %d descriptions need at least one socket", b.Name, SchemaVersion)
		}
	default:
		return fmt.Errorf("platform: backend %q: schema: got version %d, this build reads versions %d and %d (re-export the description or upgrade)",
			b.Name, b.Schema, SchemaVersionV1, SchemaVersion)
	}
	if b.Name == "" {
		return fmt.Errorf("platform: backend description: name: must be non-empty")
	}
	// The flattened top-level view: the whole machine for v1, the
	// socket-0 mirror for v2.
	legacy := b.legacySocket()
	if err := legacy.validate(b.Name, ""); err != nil {
		return err
	}
	if b.Schema == SchemaVersionV1 {
		return nil
	}
	for i := range b.Sockets {
		if err := b.Sockets[i].validate(b.Name, fmt.Sprintf("sockets[%d].", i)); err != nil {
			return err
		}
	}
	if !reflect.DeepEqual(legacy, b.Sockets[0]) {
		return fmt.Errorf("platform: backend %q: sockets[0]: top-level socket fields must mirror socket 0 (Parse and Register normalize this; call Normalize after editing a description in code)", b.Name)
	}
	if len(b.Sockets) > 1 && b.Interconnect == nil {
		return fmt.Errorf("platform: backend %q: interconnect: required for multi-socket topologies", b.Name)
	}
	if b.Interconnect != nil {
		if err := b.Interconnect.validate(b.Name); err != nil {
			return err
		}
	}
	if b.Nodes < 0 {
		return fmt.Errorf("platform: backend %q: nodes: must be >= 0 (0 means one node), got %d", b.Name, b.Nodes)
	}
	return nil
}

// Parse decodes one backend description, rejecting unknown fields (typos
// in hand-written files surface as errors, not silent zeros) and
// validating the result.
func Parse(data []byte) (*Backend, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Backend
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("platform: parse backend description: %w", err)
	}
	b.Normalize()
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// Marshal renders the description as indented, field-stable JSON.
func (b *Backend) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("platform: marshal backend %q: %w", b.Name, err)
	}
	return append(out, '\n'), nil
}

// Hash is a content hash of the canonical (compact JSON) description,
// used to key memoized calibrations and to pin a Calibration artifact to
// the exact description it was fitted against.
func (b *Backend) Hash() string {
	data, err := json.Marshal(b)
	if err != nil {
		// Backend has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("platform: hash backend %q: %v", b.Name, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
