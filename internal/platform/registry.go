package platform

import (
	"embed"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The two Table-III evaluation machines ship embedded so the default
// build needs no files on disk; additional backends register from
// platforms/*.json via LoadFile/LoadDir.
//
//go:embed descriptions/*.json
var embedded embed.FS

var reg = struct {
	sync.RWMutex
	byName map[string]*Backend // canonical name -> description
	order  []string            // registration order (canonical names)
}{byName: map[string]*Backend{}}

func init() {
	names, err := fs()
	if err != nil {
		panic(err)
	}
	for _, name := range names {
		data, err := embedded.ReadFile(name)
		if err != nil {
			panic(fmt.Sprintf("platform: embedded %s: %v", name, err))
		}
		b, err := Parse(data)
		if err != nil {
			panic(fmt.Sprintf("platform: embedded %s: %v", name, err))
		}
		if err := Register(b); err != nil {
			panic(fmt.Sprintf("platform: embedded %s: %v", name, err))
		}
	}
}

// fs lists the embedded description files sorted, so registration order
// (and therefore Paper()/All() order) is deterministic: bdw before rpl.
func fs() ([]string, error) {
	ents, err := embedded.ReadDir("descriptions")
	if err != nil {
		return nil, fmt.Errorf("platform: embedded descriptions: %w", err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, "descriptions/"+e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Register validates a description and adds it to the registry. A
// backend with an already-registered canonical name replaces the old one
// in place (last wins — file-loaded descriptions can override embedded
// ones); a name or alias colliding with a *different* backend's is an
// error.
func Register(b *Backend) error {
	b.Normalize()
	if err := b.Validate(); err != nil {
		return err
	}
	reg.Lock()
	defer reg.Unlock()
	for name, other := range reg.byName {
		if name == b.Name {
			continue
		}
		for _, n := range append([]string{other.Name}, other.Aliases...) {
			for _, m := range append([]string{b.Name}, b.Aliases...) {
				if strings.EqualFold(n, m) {
					return fmt.Errorf("platform: backend %q: name/alias %q collides with registered backend %q", b.Name, m, other.Name)
				}
			}
		}
	}
	if _, ok := reg.byName[b.Name]; !ok {
		reg.order = append(reg.order, b.Name)
	}
	reg.byName[b.Name] = b
	return nil
}

// Lookup resolves a backend by canonical name or alias,
// case-insensitively. Unknown names return an error listing what is
// registered — never nil.
func Lookup(name string) (*Backend, error) {
	reg.RLock()
	defer reg.RUnlock()
	for _, b := range reg.byName {
		if strings.EqualFold(b.Name, name) {
			return b, nil
		}
		for _, a := range b.Aliases {
			if strings.EqualFold(a, name) {
				return b, nil
			}
		}
	}
	return nil, fmt.Errorf("platform: unknown backend %q (registered: %s)", name, strings.Join(namesLocked(), ", "))
}

// Names returns the canonical names in registration order.
func Names() []string {
	reg.RLock()
	defer reg.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	return append([]string(nil), reg.order...)
}

// All returns every registered description in registration order.
func All() []*Backend {
	reg.RLock()
	defer reg.RUnlock()
	out := make([]*Backend, 0, len(reg.order))
	for _, name := range reg.order {
		out = append(out, reg.byName[name])
	}
	return out
}

// Paper returns the Table-III evaluation machines (Paper: true) in
// registration order — the set the golden experiments sweep.
func Paper() []*Backend {
	var out []*Backend
	for _, b := range All() {
		if b.Paper {
			out = append(out, b)
		}
	}
	return out
}

// LoadFile parses one description file and registers it (last wins for
// same-name re-registration).
func LoadFile(path string) (*Backend, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("platform: load backend: %w", err)
	}
	b, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	if err := Register(b); err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return b, nil
}

// LoadDir registers every *.json description in a directory, sorted by
// filename for deterministic registration order.
func LoadDir(dir string) ([]*Backend, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("platform: load dir: %w", err)
	}
	sort.Strings(paths)
	var out []*Backend
	for _, p := range paths {
		b, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
