package platform

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// validTopologyBackend returns a well-formed 2-socket schema-v2
// description whose sockets are the validBackend machine, normalized.
func validTopologyBackend() *Backend {
	base := validBackend()
	sock := base.legacySocket()
	b := &Backend{
		Schema:   SchemaVersion,
		Name:     "TOPO-TEST",
		Aliases:  []string{"tt"},
		CPU:      "Topology Test CPU (2S)",
		Released: 2026,
		Sockets:  []Socket{sock, sock},
		Interconnect: &Interconnect{
			BWGBs: 19.2, LatencyNs: 120, EnergyPJPerByte: 15,
		},
	}
	b.Normalize()
	return b
}

func TestTopologyValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Backend)
		want   string
	}{
		{"no sockets", func(b *Backend) { b.Sockets = nil }, "sockets"},
		{"missing interconnect", func(b *Backend) { b.Interconnect = nil }, "interconnect"},
		{"zero link bandwidth", func(b *Backend) { b.Interconnect.BWGBs = 0 }, "interconnect.bw_gbs"},
		{"negative link latency", func(b *Backend) { b.Interconnect.LatencyNs = -1 }, "interconnect.latency_ns"},
		{"negative link energy", func(b *Backend) { b.Interconnect.EnergyPJPerByte = -1 }, "interconnect.energy_pj_per_byte"},
		{"negative nodes", func(b *Backend) { b.Nodes = -2 }, "nodes"},
		{"bad remote socket", func(b *Backend) { b.Sockets[1].Cores = 0 }, "sockets[1].cores"},
		{"stale mirror", func(b *Backend) { b.CapStepGHz = 0.2 }, "mirror socket 0"},
	} {
		b := validTopologyBackend()
		tc.mutate(b)
		err := b.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted the bad topology", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	if err := validTopologyBackend().Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	// v1 descriptions cannot smuggle topology fields.
	v1 := validBackend()
	v1.Nodes = 4
	if err := v1.Validate(); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("v1-with-nodes error = %v", err)
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	b := validTopologyBackend()
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatal("round trip changed the topology description")
	}
	if b.Hash() != got.Hash() {
		t.Fatal("hash changed across round trip")
	}
	// A v2 file that omits the top-level mirror normalizes to the same
	// description (and therefore the same content hash) as one that
	// spells it out: socket 0 is authoritative either way.
	stripped := *b
	stripped.Cores, stripped.Threads = 0, 0
	stripped.CoreMinGHz, stripped.CoreMaxGHz, stripped.CoreBaseGHz = 0, 0, 0
	stripped.UncoreMinGHz, stripped.UncoreMaxGHz = 0, 0
	stripped.CapStepGHz, stripped.CapLatencySec = 0, 0
	stripped.HasUncoreRAPL = false
	stripped.Cache, stripped.Truth = nil, Truth{}
	raw, err := stripped.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(raw)
	if err != nil {
		t.Fatalf("stripped-mirror description rejected: %v", err)
	}
	if reparsed.Hash() != b.Hash() {
		t.Fatal("normalization is not canonical: stripped mirror hashes differently")
	}
}

// TestV1LoadsAsSingleSocketTopology is the v1→v2 equivalence guard at the
// schema layer: every v1 description (the embedded BDW/RPL machines and
// anything loaded from platforms/) presents exactly one socket whose
// fields are the flattened top-level view, and its serialized form — and
// therefore its content hash, which pins calibrations and plan tables —
// carries none of the new topology keys.
func TestV1LoadsAsSingleSocketTopology(t *testing.T) {
	for _, b := range All() {
		if b.Schema != SchemaVersionV1 {
			continue
		}
		if got := b.NumSockets(); got != 1 {
			t.Fatalf("%s: NumSockets = %d, want 1", b.Name, got)
		}
		if got := b.NumNodes(); got != 1 {
			t.Fatalf("%s: NumNodes = %d, want 1", b.Name, got)
		}
		topo := b.Topology()
		if len(topo) != 1 || !reflect.DeepEqual(topo[0], b.legacySocket()) {
			t.Fatalf("%s: Topology() is not the flattened single socket", b.Name)
		}
		if !b.Homogeneous() {
			t.Fatalf("%s: single socket must be homogeneous", b.Name)
		}
		if b.TotalThreads() != b.Threads || b.TotalCores() != b.Cores {
			t.Fatalf("%s: totals differ from the single socket", b.Name)
		}
		data, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{`"sockets"`, `"interconnect"`, `"nodes"`} {
			if bytes.Contains(data, []byte(key)) {
				t.Fatalf("%s: v1 serialization grew a %s key — content hash no longer seed-identical", b.Name, key)
			}
		}
	}
}

func TestTopologyAccessors(t *testing.T) {
	b := validTopologyBackend()
	if got := b.NumSockets(); got != 2 {
		t.Fatalf("NumSockets = %d", got)
	}
	if got := b.TotalThreads(); got != 2*b.Sockets[0].Threads {
		t.Fatalf("TotalThreads = %d", got)
	}
	if !b.Homogeneous() {
		t.Fatal("identical sockets reported heterogeneous")
	}
	b.Sockets[1].Threads *= 2
	b.Sockets[1].Cores *= 2
	if b.Homogeneous() {
		t.Fatal("differing sockets reported homogeneous")
	}
	b.Nodes = 4
	if got := b.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d", got)
	}
}
