package pluto

import (
	"fmt"
	"sort"

	"polyufc/internal/ir"
)

// Permute reorders a fully permutable perfect band for locality: loops
// whose unit increment moves the accesses farthest (large strides, cache
// miss per iteration) are pushed outward; loops carrying temporal (stride
// 0) or spatial (sub-line stride) reuse move inward. This is the
// locality-driven interchange component of the Pluto baseline (the
// classic ikj matmul permutation). Bound dependences are respected: a loop
// whose bounds reference another band IV stays inside it.
//
// parLevels optionally marks which original levels are parallel; until a
// parallel loop has been placed, parallel candidates win over higher-cost
// serial ones, so the outermost loop stays parallelizable (Pluto's
// priority: outer parallelism first, then locality). Pass nil for a pure
// locality order.
//
// It returns the permuted nest and perm, where perm[newLevel] = oldLevel.
// Legality (full permutability) is the caller's responsibility.
func Permute(nest *ir.Nest, parLevels []bool) (*ir.Nest, []int, error) {
	band, body, err := perfectBand(nest)
	if err != nil {
		return nil, nil, err
	}
	n := len(band)
	if n < 2 {
		return nest, identityPerm(n), nil
	}
	costs := loopCosts(band, body)

	// Bound dependences: mustBeInside[d] = set of band levels whose IVs
	// appear in level d's bounds.
	ivLevel := map[string]int{}
	for i, l := range band {
		ivLevel[l.IV] = i
	}
	deps := make([]map[int]bool, n)
	for d, l := range band {
		deps[d] = map[int]bool{}
		for _, b := range append(append([]ir.Bound(nil), l.Lo...), l.Hi...) {
			for iv := range b.Expr.Coef {
				if o, ok := ivLevel[iv]; ok && o != d {
					deps[d][o] = true
				}
			}
		}
	}

	// Greedy topological order: repeatedly place, as the next-outermost
	// loop, the highest-cost loop whose bound providers are all placed;
	// before any parallel loop is placed, parallel candidates take
	// precedence.
	isPar := func(d int) bool { return d < len(parLevels) && parLevels[d] }
	anyPar := false
	for d := 0; d < n; d++ {
		if isPar(d) {
			anyPar = true
		}
	}
	placed := make([]bool, n)
	parPlaced := false
	var perm []int
	for len(perm) < n {
		best := -1
		for d := 0; d < n; d++ {
			if placed[d] {
				continue
			}
			ready := true
			for o := range deps[d] {
				if !placed[o] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if best < 0 {
				best = d
				continue
			}
			needPar := anyPar && !parPlaced
			if needPar && isPar(d) != isPar(best) {
				if isPar(d) {
					best = d
				}
				continue
			}
			if costs[d] > costs[best]+1e-12 {
				best = d
			}
		}
		if best < 0 {
			return nil, nil, fmt.Errorf("pluto: cyclic bound dependences in %s", nest.Label)
		}
		placed[best] = true
		if isPar(best) {
			parPlaced = true
		}
		perm = append(perm, best)
	}

	// Rebuild the nest in the new order.
	loops := make([]*ir.Loop, n)
	for newL, oldL := range perm {
		src := band[oldL]
		loops[newL] = &ir.Loop{
			IV:       src.IV,
			Lo:       append([]ir.Bound(nil), src.Lo...),
			Hi:       append([]ir.Bound(nil), src.Hi...),
			Parallel: src.Parallel,
		}
	}
	for i := 0; i < n-1; i++ {
		loops[i].Body = []ir.Node{loops[i+1]}
	}
	loops[n-1].Body = body
	out := &ir.Nest{Label: nest.Label, Root: loops[0]}
	out.SetOrigin(nest.Origin())
	return out, perm, nil
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// loopCosts estimates, per band level, the cache-miss cost of one
// increment of that loop across all statement accesses: 0 for temporal
// reuse, stride/line for sub-line spatial strides, 1 for line-or-larger
// strides.
func loopCosts(band []*ir.Loop, body []ir.Node) []float64 {
	const line = 64.0
	costs := make([]float64, len(band))
	var visit func(nodes []ir.Node)
	visit = func(nodes []ir.Node) {
		for _, node := range nodes {
			switch x := node.(type) {
			case *ir.Loop:
				visit(x.Body)
			case *ir.Statement:
				for _, acc := range x.Accesses {
					strides := accStrides(acc)
					for d, l := range band {
						s := strides[l.IV]
						if s < 0 {
							s = -s
						}
						switch {
						case s == 0:
						case float64(s) < line:
							costs[d] += float64(s) / line
						default:
							costs[d] += 1
						}
					}
				}
			}
		}
	}
	visit(body)
	return costs
}

// accStrides computes the byte stride of each IV for an access.
func accStrides(acc ir.Access) map[string]int64 {
	lin := ir.AffConst(0)
	strides := acc.Array.Strides()
	for d, e := range acc.Index {
		lin = lin.Add(e.Scale(strides[d]))
	}
	lin = lin.Scale(acc.Array.ElemSize)
	return lin.Coef
}

// sortedByCost is a debugging helper: band IVs ordered as Permute would
// place them (outermost first), ignoring bound dependences.
func sortedByCost(band []*ir.Loop, body []ir.Node) []string {
	costs := loopCosts(band, body)
	idx := identityPerm(len(band))
	sort.SliceStable(idx, func(a, b int) bool { return costs[idx[a]] > costs[idx[b]] })
	out := make([]string, len(band))
	for i, d := range idx {
		out[i] = band[d].IV
	}
	return out
}
