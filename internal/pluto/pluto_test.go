package pluto

import (
	"testing"

	"polyufc/internal/ir"
)

// matmulNest builds C[i,j] += A[i,k]*B[k,j] over m x n x k.
func matmulNest(m, n, k int64) *ir.Nest {
	A := ir.NewArray("A", 8, m, k)
	B := ir.NewArray("B", 8, k, n)
	C := ir.NewArray("C", 8, m, n)
	stmt := &ir.Statement{Name: "S0", Flops: 2}
	i, j, kk := ir.AffVar("i"), ir.AffVar("j"), ir.AffVar("k")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i, kk}},
		{Array: B, Index: []ir.AffExpr{kk, j}},
		{Array: C, Index: []ir.AffExpr{i, j}},
		{Array: C, Write: true, Index: []ir.AffExpr{i, j}},
	}
	kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(k-1), stmt)
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(n-1), kl)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(m-1), jl)
	return &ir.Nest{Label: "matmul", Root: il}
}

// stencilNest builds A[i] = A[i-1] + A[i] (a loop-carried dependence).
func stencilNest(n int64) *ir.Nest {
	A := ir.NewArray("A", 8, n)
	stmt := &ir.Statement{Name: "S0", Flops: 1}
	i := ir.AffVar("i")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i.AddConst(-1)}},
		{Array: A, Index: []ir.AffExpr{i}},
		{Array: A, Write: true, Index: []ir.AffExpr{i}},
	}
	il := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-1), stmt)
	return &ir.Nest{Label: "stencil", Root: il}
}

func TestMatmulDependences(t *testing.T) {
	info, err := Analyze(matmulNest(16, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if info.Depth != 3 {
		t.Fatalf("depth = %d", info.Depth)
	}
	if len(info.Deps) == 0 {
		t.Fatal("matmul must have reduction dependences on C")
	}
	if !info.FullyPermutable() {
		t.Fatal("matmul band must be fully permutable")
	}
	par := info.ParallelLevels()
	if !par[0] || !par[1] || par[2] {
		t.Fatalf("parallel levels = %v, want [true true false]", par)
	}
	for _, d := range info.Deps {
		if d.Array.Name != "C" {
			t.Fatalf("dependence on %s, only C expected", d.Array.Name)
		}
		if !d.Carried[2] {
			t.Fatal("reduction dependence must be carried at k")
		}
	}
}

func TestStencilNotParallel(t *testing.T) {
	info, err := Analyze(stencilNest(100))
	if err != nil {
		t.Fatal(err)
	}
	par := info.ParallelLevels()
	if par[0] {
		t.Fatal("A[i] = A[i-1] + A[i] loop must not be parallel")
	}
	if !info.FullyPermutable() {
		t.Fatal("forward-only dependence is still non-negative")
	}
}

func TestReversedDependenceBlocksTiling(t *testing.T) {
	// A[i][j] = A[i+1][j-1]: distance (+1, -1) -> negative at level 1.
	A := ir.NewArray("A", 8, 20, 20)
	stmt := &ir.Statement{Name: "S0", Flops: 1}
	i, j := ir.AffVar("i"), ir.AffVar("j")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i.AddConst(1), j.AddConst(-1)}},
		{Array: A, Write: true, Index: []ir.AffExpr{i, j}},
	}
	jl := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(18), stmt)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(18), jl)
	nest := &ir.Nest{Label: "skewed", Root: il}
	info, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	if info.FullyPermutable() {
		t.Fatal("(+,-) dependence must block rectangular tiling")
	}
	res, err := Optimize(nest, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiled {
		t.Fatal("illegal tiling applied")
	}
}

func TestTilePreservesTripCount(t *testing.T) {
	for _, dims := range [][3]int64{{8, 8, 8}, {33, 17, 40}, {64, 64, 64}, {100, 3, 7}} {
		nest := matmulNest(dims[0], dims[1], dims[2])
		orig, err := nest.TripCount()
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := TileNest(nest, 32)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tiled.TripCount()
		if err != nil {
			t.Fatal(err)
		}
		if got != orig {
			t.Fatalf("dims %v: tiled trip count %d != original %d", dims, got, orig)
		}
	}
}

func TestTileStructure(t *testing.T) {
	nest := matmulNest(64, 64, 64)
	tiled, err := TileNest(nest, 32)
	if err != nil {
		t.Fatal(err)
	}
	var ivs []string
	tiled.WalkLoops(func(l *ir.Loop, _ int) { ivs = append(ivs, l.IV) })
	want := []string{"t_i", "t_j", "t_k", "i", "j", "k"}
	if len(ivs) != len(want) {
		t.Fatalf("loops = %v", ivs)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("loops = %v, want %v", ivs, want)
		}
	}
}

func TestTriangularTiling(t *testing.T) {
	// Triangular domain: 0 <= i < N, 0 <= j <= i (no dependences).
	n := int64(50)
	A := ir.NewArray("A", 8, n, n)
	stmt := &ir.Statement{Name: "S0", Flops: 1}
	i, j := ir.AffVar("i"), ir.AffVar("j")
	stmt.Accesses = []ir.Access{{Array: A, Write: true, Index: []ir.AffExpr{i, j}}}
	jl := ir.SimpleLoop("j", ir.AffConst(0), i, stmt)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
	nest := &ir.Nest{Label: "tri", Root: il}
	orig, err := nest.TripCount()
	if err != nil {
		t.Fatal(err)
	}
	if orig != n*(n+1)/2 {
		t.Fatalf("triangular trip count = %d", orig)
	}
	tiled, err := TileNest(nest, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tiled.TripCount()
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("tiled triangular trip count %d != %d", got, orig)
	}
}

func TestOptimizePipeline(t *testing.T) {
	nest := matmulNest(64, 64, 64)
	res, err := Optimize(nest, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tiled {
		t.Fatal("matmul should be tiled")
	}
	if res.NumDeps == 0 {
		t.Fatal("no dependences recorded")
	}
	// Parallel loops: t_i, t_j, i, j (levels 0 and 1 parallel).
	if len(res.ParallelLoops) != 4 {
		t.Fatalf("parallel loops = %v", res.ParallelLoops)
	}
	// The original nest must be unmodified.
	nest.WalkLoops(func(l *ir.Loop, _ int) {
		if l.Parallel {
			t.Fatalf("input nest mutated: %s marked parallel", l.IV)
		}
	})
	// Outermost loop of the result must be parallel for the baseline shape.
	if !res.Nest.Root.Parallel {
		t.Fatal("outermost tile loop should be parallel")
	}
}

func TestOptimizeElementwiseUntiledWhenShallow(t *testing.T) {
	// 1-D elementwise: depth 1, not tiled, but parallel.
	A := ir.NewArray("A", 8, 100)
	B := ir.NewArray("B", 8, 100)
	stmt := &ir.Statement{Name: "S0", Flops: 1}
	i := ir.AffVar("i")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i}},
		{Array: B, Write: true, Index: []ir.AffExpr{i}},
	}
	nest := &ir.Nest{Label: "copy", Root: ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(99), stmt)}
	res, err := Optimize(nest, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiled {
		t.Fatal("1-D nest should not be tiled")
	}
	if len(res.ParallelLoops) != 1 {
		t.Fatalf("parallel loops = %v", res.ParallelLoops)
	}
}
