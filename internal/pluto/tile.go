package pluto

import (
	"fmt"

	"polyufc/internal/ir"
)

// DefaultTileSize matches the Pluto default used by the paper (32).
const DefaultTileSize = 32

// Options configures the Pluto-style optimization pipeline.
type Options struct {
	TileSize    int64
	Tile        bool
	Parallelize bool
	// Permute enables locality-driven loop interchange on fully
	// permutable bands before tiling (the ikj-style reordering).
	Permute bool
}

// DefaultOptions returns the paper's baseline configuration: locality
// interchange and tiling with tile size 32, plus outer parallelization.
func DefaultOptions() Options {
	return Options{TileSize: DefaultTileSize, Tile: true, Parallelize: true, Permute: true}
}

// Result describes what the pipeline did to a nest.
type Result struct {
	Nest          *ir.Nest
	Tiled         bool
	TileSize      int64
	ParallelLoops []string
	NumDeps       int
	// Permutation records the interchange applied (new level -> original
	// level); nil when no interchange ran.
	Permutation []int
}

// Optimize runs dependence analysis, rectangular tiling (if legal) and
// parallel marking on a nest, returning a new nest; the input is not
// modified. Nests outside the supported class are returned unchanged
// (untiled) with Tiled=false, matching Pluto's bail-out behaviour.
func Optimize(nest *ir.Nest, opts Options) (Result, error) {
	res := Result{Nest: nest, TileSize: opts.TileSize}
	info, err := Analyze(nest)
	if err != nil {
		// Imperfect nests pass through untransformed.
		return res, nil
	}
	res.NumDeps = len(info.Deps)

	out := cloneNest(nest)
	parLevels := info.ParallelLevels()
	permutable := info.FullyPermutable()

	if opts.Permute && permutable && info.Depth >= 2 {
		permuted, perm, err := Permute(nest, parLevels)
		if err == nil {
			out = permuted
			res.Permutation = perm
			// Remap per-level parallelism to the new order.
			remapped := make([]bool, len(parLevels))
			for newL, oldL := range perm {
				remapped[newL] = parLevels[oldL]
			}
			parLevels = remapped
		}
	}
	if opts.Tile && permutable && info.Depth >= 2 {
		tiled, err := TileNest(out, opts.TileSize)
		if err != nil {
			return res, err
		}
		out = tiled
		res.Tiled = true
	}
	if opts.Parallelize {
		res.ParallelLoops = markParallel(out, parLevels, res.Tiled, info.Depth)
	}
	res.Nest = out
	return res, nil
}

// TileNest applies rectangular tiling with the given tile size to a
// perfect nest, producing the (2d-deep) tiled nest. Legality is the
// caller's responsibility (see DepInfo.FullyPermutable).
func TileNest(nest *ir.Nest, t int64) (*ir.Nest, error) {
	if t < 2 {
		return nil, fmt.Errorf("pluto: tile size %d too small", t)
	}
	band, body, err := perfectBand(nest)
	if err != nil {
		return nil, err
	}
	n := len(band)
	tileIV := make(map[string]string, n)
	for _, l := range band {
		tileIV[l.IV] = "t_" + l.IV
	}

	// Tile loops: bounds are the original bounds with original IV
	// references replaced by their tile extremes, divided by t.
	tileLoops := make([]*ir.Loop, n)
	for j, l := range band {
		tl := &ir.Loop{IV: tileIV[l.IV]}
		for _, lo := range l.Lo {
			// The first tile containing points >= L is floor(L/t), with
			// L = ceil(e/d): floor(ceil(e/d)/t) = ceil((e + d*(1-t))/(d*t)),
			// matching the Bound convention that lower bounds take ceil.
			e := substituteTileExtreme(lo.Expr, tileIV, t, false)
			e = e.AddConst(lo.Div * (1 - t))
			tl.Lo = append(tl.Lo, ir.BDiv(e, lo.Div*t))
		}
		for _, hi := range l.Hi {
			e := substituteTileExtreme(hi.Expr, tileIV, t, true)
			tl.Hi = append(tl.Hi, ir.BDiv(e, hi.Div*t))
		}
		tileLoops[j] = tl
	}
	// Intra-tile loops: original bounds plus the tile window.
	intraLoops := make([]*ir.Loop, n)
	for j, l := range band {
		il := &ir.Loop{IV: l.IV}
		il.Lo = append(append([]ir.Bound(nil), l.Lo...), ir.BExpr(ir.AffTerm(t, tileIV[l.IV])))
		il.Hi = append(append([]ir.Bound(nil), l.Hi...), ir.BExpr(ir.AffTerm(t, tileIV[l.IV]).AddConst(t-1)))
		intraLoops[j] = il
	}
	// Chain: t_1 ... t_n, i_1 ... i_n, body.
	all := append(append([]*ir.Loop(nil), tileLoops...), intraLoops...)
	for i := 0; i < len(all)-1; i++ {
		all[i].Body = []ir.Node{all[i+1]}
	}
	all[len(all)-1].Body = body
	out := &ir.Nest{Label: nest.Label + "_tiled", Root: all[0]}
	out.SetOrigin(nest.Origin())
	return out, nil
}

// substituteTileExtreme replaces original-IV references in a bound
// expression with the extreme value they take inside their tile:
// for an upper bound (upper=true), positive coefficients take t*tv + t-1
// and negative coefficients t*tv (and vice versa for lower bounds), so the
// tile-loop bound over-approximates the original bound.
func substituteTileExtreme(e ir.AffExpr, tileIV map[string]string, t int64, upper bool) ir.AffExpr {
	out := ir.AffConst(e.Const)
	for iv, c := range e.Coef {
		tv, ok := tileIV[iv]
		if !ok {
			out = out.Add(ir.AffTerm(c, iv))
			continue
		}
		// iv in [t*tv, t*tv + t - 1].
		hiSide := (c > 0) == upper
		out = out.Add(ir.AffTerm(c*t, tv))
		if hiSide {
			out = out.AddConst(c * (t - 1))
		}
	}
	return out
}

// perfectBand extracts the loop chain of a perfect nest and the innermost
// body (which must contain only statements).
func perfectBand(nest *ir.Nest) ([]*ir.Loop, []ir.Node, error) {
	var band []*ir.Loop
	cur := nest.Root
	for cur != nil {
		band = append(band, cur)
		var sub *ir.Loop
		stmts := 0
		for _, node := range cur.Body {
			switch x := node.(type) {
			case *ir.Loop:
				if sub != nil {
					return nil, nil, fmt.Errorf("pluto: nest is not perfect (sibling loops)")
				}
				sub = x
			case *ir.Statement:
				stmts++
			}
		}
		if sub != nil && stmts > 0 {
			return nil, nil, fmt.Errorf("pluto: nest is not perfect (loop and statement siblings)")
		}
		if sub == nil {
			return band, cur.Body, nil
		}
		cur = sub
	}
	return nil, nil, fmt.Errorf("pluto: empty nest")
}

// cloneNest deep-copies the loop structure of a nest; statements are
// shared (they are not mutated by the pipeline).
func cloneNest(n *ir.Nest) *ir.Nest {
	var cloneLoop func(l *ir.Loop) *ir.Loop
	cloneLoop = func(l *ir.Loop) *ir.Loop {
		nl := &ir.Loop{
			IV:       l.IV,
			Lo:       append([]ir.Bound(nil), l.Lo...),
			Hi:       append([]ir.Bound(nil), l.Hi...),
			Parallel: l.Parallel,
		}
		for _, node := range l.Body {
			if sub, ok := node.(*ir.Loop); ok {
				nl.Body = append(nl.Body, cloneLoop(sub))
			} else {
				nl.Body = append(nl.Body, node)
			}
		}
		return nl
	}
	out := &ir.Nest{Label: n.Label, Root: cloneLoop(n.Root)}
	out.SetOrigin(n.Origin())
	return out
}

// markParallel sets the Parallel flag on loops whose level admits it and
// returns the marked IVs. For a tiled nest of original depth n, loop
// levels map as: tile loop j and intra loop j both correspond to original
// level j.
func markParallel(nest *ir.Nest, parLevels []bool, tiled bool, depth int) []string {
	var marked []string
	idx := 0
	nest.WalkLoops(func(l *ir.Loop, _ int) {
		level := idx
		if tiled {
			level = idx % depth
		}
		if level < len(parLevels) && parLevels[level] {
			l.Parallel = true
			marked = append(marked, l.IV)
		}
		idx++
	})
	return marked
}
