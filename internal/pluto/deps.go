// Package pluto implements the baseline loop-nest transformation of the
// PolyUFC flow: polyhedral dependence analysis, legality-checked
// rectangular tiling (Pluto's default tile size 32), and parallel-loop
// marking. It is a deliberately small reimplementation of the parts of the
// Pluto compiler (Bondhugula et al., PLDI 2008) the paper's evaluation
// relies on: its output is the "Pluto tiled-parallel" code shape that
// PolyUFC-CM analyzes and the hardware baseline executes.
package pluto

import (
	"fmt"

	"polyufc/internal/ir"
	"polyufc/internal/isl"
)

// Dependence describes one data dependence between two statement instances
// of a nest, summarized per loop level.
type Dependence struct {
	Array *ir.Array
	// SrcStmt and DstStmt name the endpoints.
	SrcStmt, DstStmt string
	// Kind is "flow", "anti", or "output".
	Kind string
	// NonNegative[k] reports that no instance of the dependence has a
	// negative distance at loop level k.
	NonNegative []bool
	// Zero[k] reports that every instance has distance exactly 0 at level
	// k (the condition under which level k remains parallel).
	Zero []bool
	// Carried[k] reports that some instance has equal distances at levels
	// < k and a positive distance at level k.
	Carried []bool
}

// DepInfo aggregates the dependences of one nest.
type DepInfo struct {
	Depth int
	Deps  []Dependence
}

// FullyPermutable reports whether every dependence has non-negative
// distance at every level, the legality condition for rectangular tiling
// of the whole band.
func (d *DepInfo) FullyPermutable() bool {
	for _, dep := range d.Deps {
		for _, nn := range dep.NonNegative {
			if !nn {
				return false
			}
		}
	}
	return true
}

// ParallelLevels returns, per loop level, whether the level is parallel:
// every dependence has zero distance at that level.
func (d *DepInfo) ParallelLevels() []bool {
	out := make([]bool, d.Depth)
	for k := range out {
		out[k] = true
		for _, dep := range d.Deps {
			if !dep.Zero[k] {
				out[k] = false
				break
			}
		}
	}
	return out
}

// Analyze computes the dependences of a nest. All statements must share the
// full loop stack (a "perfect" nest); imperfect nests are rejected.
func Analyze(nest *ir.Nest) (*DepInfo, error) {
	sts := nest.Statements()
	if len(sts) == 0 {
		return nil, fmt.Errorf("pluto: nest has no statements")
	}
	depth := len(sts[0].Loops)
	for _, si := range sts {
		if len(si.Loops) != depth {
			return nil, fmt.Errorf("pluto: imperfect nest (statement %s at depth %d, expected %d)",
				si.Stmt.Name, len(si.Loops), depth)
		}
	}
	info := &DepInfo{Depth: depth}
	for si1 := range sts {
		for si2 := range sts {
			deps, err := pairDeps(sts[si1], sts[si2], si1, si2)
			if err != nil {
				return nil, err
			}
			info.Deps = append(info.Deps, deps...)
		}
	}
	return info, nil
}

// pairDeps computes the dependences from accesses of s1 to accesses of s2,
// where s1's instance precedes s2's in execution order (lexicographic over
// the shared IVs; for equal iterations, textual order pos1 < pos2).
func pairDeps(s1, s2 ir.StatementInfo, pos1, pos2 int) ([]Dependence, error) {
	var out []Dependence
	ivs := s1.IVNames()
	for _, a1 := range s1.Stmt.Accesses {
		for _, a2 := range s2.Stmt.Accesses {
			if a1.Array != a2.Array {
				continue
			}
			if !a1.Write && !a2.Write {
				continue
			}
			kind := "flow"
			switch {
			case a1.Write && a2.Write:
				kind = "output"
			case !a1.Write && a2.Write:
				kind = "anti"
			}
			dep, nonEmpty := analyzeAccessPair(ivs, s1, s2, a1, a2, pos1 < pos2)
			if nonEmpty {
				dep.Array = a1.Array
				dep.SrcStmt = s1.Stmt.Name
				dep.DstStmt = s2.Stmt.Name
				dep.Kind = kind
				out = append(out, dep)
			}
		}
	}
	return out, nil
}

// analyzeAccessPair builds the dependence relation
// {(i, i') : i in D1, i' in D2, f(i) = g(i'), i before i'} and summarizes
// its distance signs per level, using sound rational emptiness tests
// (inconclusive tests are treated as "dependence may exist").
func analyzeAccessPair(ivs []string, s1, s2 ir.StatementInfo, a1, a2 ir.Access, allowEqual bool) (Dependence, bool) {
	n := len(ivs)
	base := depBase(ivs, s1, s2, a1, a2)

	// Lexicographic pieces: for k in [0,n): prefix equal, i'_k > i_k; plus
	// the all-equal piece when textual order allows it.
	pieces := make([]isl.BasicSet, 0, n+1)
	for k := 0; k < n; k++ {
		p := base.Clone()
		sp := p.Sp
		for j := 0; j < k; j++ {
			p.AddEquals(sp.VarExpr(j), sp.VarExpr(n+j))
		}
		p.AddGE(sp.VarExpr(n + k).Sub(sp.VarExpr(k)).AddConst(-1))
		pieces = append(pieces, p)
	}
	if allowEqual {
		p := base.Clone()
		sp := p.Sp
		for j := 0; j < n; j++ {
			p.AddEquals(sp.VarExpr(j), sp.VarExpr(n+j))
		}
		pieces = append(pieces, p)
	}

	anyNonEmpty := false
	for _, p := range pieces {
		if !p.IsEmptyRational() {
			anyNonEmpty = true
			break
		}
	}
	if !anyNonEmpty {
		return Dependence{}, false
	}

	dep := Dependence{
		NonNegative: make([]bool, n),
		Zero:        make([]bool, n),
		Carried:     make([]bool, n),
	}
	for k := 0; k < n; k++ {
		// Negative component possible at k?
		neg := false
		for _, p := range pieces {
			q := p.Clone()
			sp := q.Sp
			// i'_k - i_k <= -1
			q.AddGE(sp.VarExpr(k).Sub(sp.VarExpr(n + k)).AddConst(-1))
			if !q.IsEmptyRational() {
				neg = true
				break
			}
		}
		dep.NonNegative[k] = !neg

		// Nonzero component possible at k?
		nonzero := neg
		if !nonzero {
			for _, p := range pieces {
				q := p.Clone()
				sp := q.Sp
				// i'_k - i_k >= 1
				q.AddGE(sp.VarExpr(n + k).Sub(sp.VarExpr(k)).AddConst(-1))
				if !q.IsEmptyRational() {
					nonzero = true
					break
				}
			}
		}
		dep.Zero[k] = !nonzero

		// Carried at k: prefix equal, positive at k.
		carried := false
		for _, p := range pieces {
			q := p.Clone()
			sp := q.Sp
			for j := 0; j < k; j++ {
				q.AddEquals(sp.VarExpr(j), sp.VarExpr(n+j))
			}
			q.AddGE(sp.VarExpr(n + k).Sub(sp.VarExpr(k)).AddConst(-1))
			if !q.IsEmptyRational() {
				carried = true
				break
			}
		}
		dep.Carried[k] = carried
	}
	return dep, true
}

// depBase builds the conjunction: i in D1, i' in D2, f(i) = g(i') over the
// 2n-dimensional space (i, i').
func depBase(ivs []string, s1, s2 ir.StatementInfo, a1, a2 ir.Access) isl.BasicSet {
	n := len(ivs)
	dims := make([]string, 0, 2*n)
	dims = append(dims, ivs...)
	for _, iv := range ivs {
		dims = append(dims, iv+"'")
	}
	sp := isl.NewSetSpace(nil, dims)
	b := isl.Universe(sp)
	embedDomain(&b, s1.Domain, 0, 2*n)
	embedDomain(&b, s2.Domain, n, 2*n)
	// Access equality per array dimension.
	for d := range a1.Index {
		e := sp.NewLinExpr()
		addAff(&e, a1.Index[d], ivs, 0, 1)
		addAff(&e, a2.Index[d], ivs, n, -1)
		b.AddEQ(e)
	}
	return b
}

// embedDomain adds the constraints of a (parameter- and existential-free)
// domain over n IVs into a wider basic set, with the domain's variables
// mapped to columns [offset, offset+n).
func embedDomain(b *isl.BasicSet, dom isl.Set, offset, width int) {
	for _, bs := range dom.Basics {
		for _, cv := range bs.Constraints() {
			row := make([]int64, width)
			for i, c := range cv.Coef {
				row[offset+i] = c
			}
			if cv.Kind == isl.EQ {
				b.AddRawEQ(row, cv.Const)
			} else {
				b.AddRawGE(row, cv.Const)
			}
		}
	}
}

// addAff accumulates sign * aff (over the named IVs at the given column
// offset) into a LinExpr of the dependence space.
func addAff(e *isl.LinExpr, aff ir.AffExpr, ivs []string, offset int, sign int64) {
	for iv, c := range aff.Coef {
		idx := -1
		for i, name := range ivs {
			if name == iv {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("pluto: access references unknown IV %q", iv))
		}
		e.VarCoef[offset+idx] += sign * c
	}
	e.Const += sign * aff.Const
}
