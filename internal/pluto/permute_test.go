package pluto

import (
	"testing"

	"polyufc/internal/cachesim"
	"polyufc/internal/interp"
	"polyufc/internal/ir"
)

func TestPermuteMatmulToIKJ(t *testing.T) {
	nest := matmulNest(32, 32, 32)
	permuted, perm, err := Permute(nest, nil)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	permuted.WalkLoops(func(l *ir.Loop, _ int) { order = append(order, l.IV) })
	// The classic locality order: i outermost (row switch = full-line
	// cost on A and C), k middle (B row switch), j innermost (unit stride
	// on B and C, temporal on A).
	if order[2] != "j" {
		t.Fatalf("innermost = %s (order %v), want j", order[2], order)
	}
	if order[0] != "i" || order[1] != "k" {
		t.Fatalf("order = %v, want [i k j]", order)
	}
	if len(perm) != 3 {
		t.Fatalf("perm = %v", perm)
	}
	// Iteration space preserved.
	a, _ := nest.TripCount()
	b, _ := permuted.TripCount()
	if a != b {
		t.Fatalf("permutation changed trip count %d -> %d", a, b)
	}
}

func TestPermuteRespectsTriangularBounds(t *testing.T) {
	// j <= i: j must stay inside i regardless of cost.
	A := ir.NewArray("A", 8, 64, 64)
	st := &ir.Statement{Name: "S", Flops: 1}
	st.Accesses = []ir.Access{
		// Make i look cheap (stride 8) and j expensive (stride 512), so a
		// cost-only order would put j outermost — illegal here.
		{Array: A, Index: []ir.AffExpr{ir.AffVar("j"), ir.AffVar("i")}},
		{Array: A, Write: true, Index: []ir.AffExpr{ir.AffVar("j"), ir.AffVar("i")}},
	}
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffVar("i"), st)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(63), jl)
	nest := &ir.Nest{Label: "tri", Root: il}
	permuted, _, err := Permute(nest, nil)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	permuted.WalkLoops(func(l *ir.Loop, _ int) { order = append(order, l.IV) })
	if order[0] != "i" {
		t.Fatalf("bound dependence violated: order %v", order)
	}
	a, _ := nest.TripCount()
	b, _ := permuted.TripCount()
	if a != b {
		t.Fatalf("trip count changed %d -> %d", a, b)
	}
}

func TestPermuteReducesMisses(t *testing.T) {
	// For a kji-ordered matmul, interchange must reduce L1 misses
	// substantially on the simulator.
	A := ir.NewArray("A", 8, 64, 64)
	B := ir.NewArray("B", 8, 64, 64)
	C := ir.NewArray("C", 8, 64, 64)
	st := &ir.Statement{Name: "S", Flops: 2}
	i, j, k := ir.AffVar("i"), ir.AffVar("j"), ir.AffVar("k")
	st.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i, k}},
		{Array: B, Index: []ir.AffExpr{k, j}},
		{Array: C, Index: []ir.AffExpr{i, j}},
		{Array: C, Write: true, Index: []ir.AffExpr{i, j}},
	}
	// Deliberately bad order: k outer, j middle, i inner (column walks).
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(63), st)
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(63), il)
	kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(63), jl)
	bad := &ir.Nest{Label: "kji", Root: kl}
	good, _, err := Permute(bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cachesim.Config{Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: 16 << 10, LineSize: 64, Assoc: 8},
	}}
	miss := func(n *ir.Nest) int64 {
		s := mustSim(t, cfg)
		if _, err := interp.RunNest(n, interp.TracerFunc(func(a, sz int64, w bool) {
			s.Access(a, sz, w)
		})); err != nil {
			t.Fatal(err)
		}
		return s.LevelStats(0).Misses
	}
	mb, mg := miss(bad), miss(good)
	if mg*2 > mb {
		t.Fatalf("interchange did not halve misses: bad %d, permuted %d", mb, mg)
	}
}

func TestOptimizePermutesAndTiles(t *testing.T) {
	nest := matmulNest(64, 64, 64)
	res, err := Optimize(nest, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutation == nil {
		t.Fatal("no permutation recorded")
	}
	if !res.Tiled {
		t.Fatal("not tiled")
	}
	var order []string
	res.Nest.WalkLoops(func(l *ir.Loop, _ int) { order = append(order, l.IV) })
	want := []string{"t_i", "t_k", "t_j", "i", "k", "j"}
	for x := range want {
		if order[x] != want[x] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Parallelism must follow the permuted levels: i and j are parallel,
	// k is not; after ikj interchange levels 0 (i) and 2 (j) are parallel.
	if !res.Nest.Root.Parallel {
		t.Fatal("outermost tile loop (t_i) should be parallel")
	}
	a, _ := nest.TripCount()
	b, _ := res.Nest.TripCount()
	if a != b {
		t.Fatalf("pipeline changed trip count %d -> %d", a, b)
	}
}

func TestPermuteDisabled(t *testing.T) {
	nest := matmulNest(16, 16, 16)
	opts := DefaultOptions()
	opts.Permute = false
	opts.Tile = false
	res, err := Optimize(nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutation != nil {
		t.Fatal("permutation ran while disabled")
	}
	var order []string
	res.Nest.WalkLoops(func(l *ir.Loop, _ int) { order = append(order, l.IV) })
	if order[0] != "i" || order[2] != "k" {
		t.Fatalf("order changed: %v", order)
	}
}

// mustSim builds a cache simulator from a known-good config.
func mustSim(t *testing.T, cfg cachesim.Config) *cachesim.Simulator {
	t.Helper()
	s, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
