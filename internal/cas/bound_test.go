package cas

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// payloadOf builds a payload of a fixed size whose content identifies i.
func payloadOf(i, size int) []byte {
	p := bytes.Repeat([]byte{byte('a' + i%26)}, size)
	copy(p, fmt.Sprintf("payload-%d|", i))
	return p
}

func TestBoundedStoreConvergesUnderChurn(t *testing.T) {
	dir := t.TempDir()
	const maxBytes = 10 * 100 // ten 100-byte entries
	s, err := OpenOptions(dir, nil, Options{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	// Churn: store far more volume than the bound admits.
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), payloadOf(i, 100)); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.TotalBytes > maxBytes {
			t.Fatalf("after put %d: total %d exceeds bound %d", i, st.TotalBytes, maxBytes)
		}
	}
	st := s.Stats()
	if st.Entries != 10 || st.TotalBytes != maxBytes {
		t.Fatalf("converged to %d entries / %d bytes; want 10 / %d", st.Entries, st.TotalBytes, maxBytes)
	}
	if st.Evictions != n-10 || st.EvictedBytes != int64(n-10)*100 {
		t.Fatalf("evictions = %d (%d bytes); want %d (%d)", st.Evictions, st.EvictedBytes, n-10, (n-10)*100)
	}
	// The survivors are exactly the most recent puts, on disk and in the
	// index; everything older is gone from both.
	files, err := filepath.Glob(filepath.Join(dir, "*.cas"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 10 {
		t.Fatalf("%d entry files on disk; want 10", len(files))
	}
	for i := 0; i < n-10; i++ {
		if s.Has(testKey(i)) {
			t.Fatalf("evicted key %d still indexed", i)
		}
	}
	for i := n - 10; i < n; i++ {
		got, ok := s.Get(testKey(i))
		if !ok || !bytes.Equal(got, payloadOf(i, 100)) {
			t.Fatalf("survivor key %d: ok=%v", i, ok)
		}
	}
}

func TestEvictionIsLRUNotFIFO(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), nil, Options{MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i), payloadOf(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry: key 1 becomes the LRU victim.
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing before churn")
	}
	if err := s.Put(testKey(3), payloadOf(3, 100)); err != nil {
		t.Fatal(err)
	}
	if s.Has(testKey(1)) {
		t.Fatal("key 1 survived eviction despite being least recently used")
	}
	for _, i := range []int{0, 2, 3} {
		if !s.Has(testKey(i)) {
			t.Fatalf("key %d evicted; want it kept", i)
		}
	}
}

func TestOversizedEntrySurvivesAlone(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), nil, Options{MaxBytes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(0), payloadOf(0, 100)); err != nil {
		t.Fatal(err)
	}
	// A single entry over the bound is kept (never thrash to empty), but
	// the next put displaces it.
	if !s.Has(testKey(0)) {
		t.Fatal("oversized sole entry was evicted")
	}
	if err := s.Put(testKey(1), payloadOf(1, 100)); err != nil {
		t.Fatal(err)
	}
	if s.Has(testKey(0)) || !s.Has(testKey(1)) {
		t.Fatalf("after second put: has0=%v has1=%v; want false/true", s.Has(testKey(0)), s.Has(testKey(1)))
	}
}

func TestWarmStartTrimsToNewBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(testKey(i), payloadOf(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-open with a budget for only three entries: the scan itself must
	// trim, and the survivors still verify.
	s2, err := OpenOptions(dir, nil, Options{MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Entries != 3 || st.TotalBytes != 300 || st.Evictions != 5 {
		t.Fatalf("after bounded re-open: %+v", st)
	}
	for _, key := range s2.Keys() {
		if _, ok := s2.Get(key); !ok {
			t.Fatalf("warm survivor %s failed verification", key)
		}
	}
	if s2.Stats().Quarantined != 0 {
		t.Fatal("trim quarantined entries; want clean removal")
	}
}

func TestUnboundedStoreNeverEvicts(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(testKey(i), payloadOf(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 0 || st.Entries != 50 || st.TotalBytes != 5000 {
		t.Fatalf("unbounded store: %+v", st)
	}
}
