package cas

import (
	"bytes"
	"testing"
)

// FuzzDecodeEntry drives arbitrary bytes through the entry codec: it
// must never panic, and whenever it accepts a frame the decoded entry
// must re-encode to exactly the bytes it accepted (a decoded entry is a
// verified entry, and verified entries are canonical).
func FuzzDecodeEntry(f *testing.F) {
	seed := func(key string, payload []byte) {
		if frame, err := EncodeEntry(key, payload); err == nil {
			f.Add(frame)
		}
	}
	seed(Sum([]byte("a")), []byte(`{"kernel":"gemm"}`))
	seed(Sum([]byte("b"))[:16], nil)
	seed(Sum([]byte("c")), bytes.Repeat([]byte{0}, 256))
	f.Add([]byte(magic))
	f.Add([]byte(magic + "{\"key\":\"0123456789abcdef\",\"len\":0,\"sum\":\"\"}\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		key, payload, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if !ValidKey(key) {
			t.Fatalf("DecodeEntry accepted invalid key %q", key)
		}
		frame, eerr := EncodeEntry(key, payload)
		if eerr != nil {
			t.Fatalf("re-encode of accepted entry failed: %v", eerr)
		}
		// The header is canonical JSON, so an accepted frame that
		// round-trips differently only differs in semantically neutral
		// header bytes (field case, whitespace); the identity parts must
		// survive: decoding the re-encoded frame yields the same entry.
		key2, payload2, derr := DecodeEntry(frame)
		if derr != nil || key2 != key || !bytes.Equal(payload2, payload) {
			t.Fatalf("re-encoded entry did not round-trip: %q %q %v", key2, payload2, derr)
		}
	})
}
