// Package cas is the disk-persisted content-addressed store behind the
// fleet cache tier: every cacheable artifact the pipeline produces — a
// deterministic serve response, a calibration fit, a capping-plan table
// — already has a stable content-hash identity, and this store keeps
// the bytes for that identity across process restarts, so a rebooted
// daemon warm-starts instead of recomputing and peers exchange entries
// by hash.
//
// The robustness contract:
//
//   - Writes are crash-safe: entries are framed with an internal
//     checksum and land via the journal's atomic temp+fsync+rename, so
//     the store never holds a torn entry.
//   - Reads are verified: every Get re-checks the frame (length and
//     SHA-256). An entry that fails — disk corruption, a bit flip —
//     is quarantined into a ".quarantine" sidecar next to the store
//     and reported as a miss; corruption costs one recompute, never a
//     wrong answer and never the rest of the store.
//   - Boot is a warm-start scan: Open validates every entry on disk,
//     quarantines the damaged ones, and serves the rest immediately.
//
// The injectable fault point "cas.read.bitflip" flips one payload bit
// on read, exercising the quarantine path deterministically.
package cas

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"polyufc/internal/faults"
	"polyufc/internal/journal"
)

// FaultReadBitflip is the injectable fault point that flips one bit of
// a read payload before verification — the deterministic stand-in for
// disk corruption between scan and read.
const FaultReadBitflip = "cas.read.bitflip"

// Stats are the store's counters, shaped for /statsz.
type Stats struct {
	// Entries is the live entry count; WarmEntries how many of them
	// were loaded from disk at Open (survivors of the last process).
	Entries     int `json:"entries"`
	WarmEntries int `json:"warm_entries"`
	// Hits and Misses count Get outcomes; WarmHits the Gets served from
	// entries that were already on disk at boot — nonzero warm hits are
	// the proof a restart actually reused the previous run's work.
	Hits     int64 `json:"hits"`
	WarmHits int64 `json:"warm_hits"`
	Misses   int64 `json:"misses"`
	// Puts counts stored entries, PutBytes their payload volume.
	Puts     int64 `json:"puts"`
	PutBytes int64 `json:"put_bytes"`
	// Quarantined counts entries diverted to ".quarantine" sidecars
	// after failing verification at scan or read time.
	Quarantined int64 `json:"quarantined"`
	// TotalBytes is the live payload volume; Evictions and EvictedBytes
	// count entries removed by the MaxBytes LRU bound (zero on an
	// unbounded store).
	TotalBytes   int64 `json:"total_bytes"`
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
}

// Options tunes a store.
type Options struct {
	// MaxBytes bounds the summed payload volume; when a Put (or a
	// warm-start scan) pushes the store past it, least-recently-accessed
	// entries are evicted — index entry and disk file both — until the
	// store fits again. The most recently touched entry is never evicted,
	// so a single oversized payload still serves. 0 means unbounded.
	MaxBytes int64
}

// Store is a directory of framed, checksummed entries, one file per
// key. It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string
	faults  *faults.Registry
	opts    Options
	entries map[string]*entryInfo
	// total is the summed payload volume of the index; seq orders entry
	// accesses for the LRU eviction policy (a logical clock, bumped on
	// every Get hit and Put).
	total int64
	seq   int64
	stats Stats
}

type entryInfo struct {
	warm bool
	size int64
	// access is the seq value of the entry's last Get hit or Put; the
	// smallest access is the eviction victim.
	access int64
}

// entryPath is the on-disk file of a key.
func (s *Store) entryPath(key string) string { return filepath.Join(s.dir, key+".cas") }

// QuarantinePath returns the sidecar a corrupt entry file is moved to.
func QuarantinePath(path string) string { return path + ".quarantine" }

// Open loads (or creates) the store at dir and warm-start scans it:
// every *.cas file is decoded and verified; valid entries are indexed
// as warm, damaged ones are quarantined. reg (may be nil) arms the
// store's injectable fault points.
func Open(dir string, reg *faults.Registry) (*Store, error) {
	return OpenOptions(dir, reg, Options{})
}

// OpenOptions is Open with store options (the MaxBytes LRU bound). A
// warm-start scan that exceeds the bound evicts oldest-scanned entries
// immediately, so a store re-opened with a smaller budget trims itself
// at boot.
func OpenOptions(dir string, reg *faults.Registry, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	s := &Store{dir: dir, faults: reg, opts: opts, entries: map[string]*entryInfo{}}
	names, err := filepath.Glob(filepath.Join(dir, "*.cas"))
	if err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("cas: scan: %w", err)
		}
		key, payload, derr := DecodeEntry(data)
		// The file name is part of the identity: a valid frame under the
		// wrong name is as corrupt as a bad checksum.
		if derr == nil && s.entryPath(key) != path {
			derr = fmt.Errorf("cas: entry key %s does not match file %s", key, filepath.Base(path))
		}
		if derr != nil {
			if qerr := s.quarantine(path); qerr != nil {
				return nil, qerr
			}
			continue
		}
		s.seq++
		s.entries[key] = &entryInfo{warm: true, size: int64(len(payload)), access: s.seq}
		s.total += int64(len(payload))
	}
	s.evictLocked()
	s.stats.WarmEntries = len(s.entries)
	return s, nil
}

// evictLocked enforces the MaxBytes bound: least-recently-accessed
// entries go first — dropped from the index and removed from disk —
// until the store fits. The most recently touched entry always
// survives, so a single payload larger than the bound still serves
// (and converges to a one-entry store instead of thrashing).
func (s *Store) evictLocked() {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.total > s.opts.MaxBytes && len(s.entries) > 1 {
		victim := ""
		var oldest int64
		for k, info := range s.entries {
			if victim == "" || info.access < oldest {
				victim, oldest = k, info.access
			}
		}
		info := s.entries[victim]
		delete(s.entries, victim)
		if info.warm {
			s.stats.WarmEntries--
		}
		s.total -= info.size
		s.stats.Evictions++
		s.stats.EvictedBytes += info.size
		// A remove failure leaves a stray file behind; the next Open
		// re-indexes it. The index bound — what the serving path sees —
		// holds regardless.
		_ = os.Remove(s.entryPath(victim))
	}
}

// quarantine moves a damaged entry file into its ".quarantine" sidecar
// (appending content if a previous quarantine of the same name exists)
// so the evidence survives and the store path is free for a clean
// re-fetch.
func (s *Store) quarantine(path string) error {
	q := QuarantinePath(path)
	if _, err := os.Stat(q); err == nil {
		// A second corruption of the same key: keep both bodies.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return fmt.Errorf("cas: quarantine: %w", rerr)
		}
		f, oerr := os.OpenFile(q, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return fmt.Errorf("cas: quarantine: %w", oerr)
		}
		if _, werr := f.Write(data); werr != nil {
			f.Close()
			return fmt.Errorf("cas: quarantine: %w", werr)
		}
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("cas: quarantine: %w", cerr)
		}
		if rerr := os.Remove(path); rerr != nil {
			return fmt.Errorf("cas: quarantine: %w", rerr)
		}
	} else if err := os.Rename(path, q); err != nil {
		return fmt.Errorf("cas: quarantine: %w", err)
	}
	s.stats.Quarantined++
	return nil
}

// Get returns the verified payload for key. A miss — unknown key, or an
// entry that failed verification and was quarantined — returns ok
// false; corruption is counted and contained, never surfaced as an
// error, because the caller's contract is "recompute on miss".
func (s *Store) Get(key string) (payload []byte, ok bool) {
	if s == nil || !ValidKey(key) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err == nil {
		if ferr := s.faults.Hit(FaultReadBitflip); ferr != nil && len(data) > 0 {
			data[len(data)-1] ^= 0x01 // deterministic single-bit flip
		}
		var gotKey string
		var body []byte
		if gotKey, body, err = DecodeEntry(data); err == nil && gotKey != key {
			err = fmt.Errorf("cas: entry key mismatch")
		}
		if err == nil {
			s.stats.Hits++
			if info.warm {
				s.stats.WarmHits++
			}
			s.seq++
			info.access = s.seq
			return body, true
		}
	}
	// Unreadable or failed verification: quarantine what is there and
	// forget the entry. A quarantine failure (disk dying) still drops
	// the index entry — serving a known-bad entry is the one forbidden
	// outcome.
	delete(s.entries, key)
	s.total -= info.size
	if info.warm {
		s.stats.WarmEntries--
	}
	if _, serr := os.Stat(path); serr == nil {
		_ = s.quarantine(path)
	}
	s.stats.Misses++
	return nil, false
}

// Put stores a payload under key, crash-safely: the framed entry is
// written via atomic temp+fsync+rename, so a crash mid-Put leaves
// either the old entry or the new one, never a torn file.
func (s *Store) Put(key string, payload []byte) error {
	if s == nil {
		return nil
	}
	data, err := EncodeEntry(key, payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := journal.AtomicWrite(s.entryPath(key), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return fmt.Errorf("cas: put %s: %w", key, err)
	}
	if old, ok := s.entries[key]; ok {
		if old.warm {
			s.stats.WarmEntries--
		}
		s.total -= old.size
	}
	s.seq++
	s.entries[key] = &entryInfo{size: int64(len(payload)), access: s.seq}
	s.total += int64(len(payload))
	s.stats.Puts++
	s.stats.PutBytes += int64(len(payload))
	s.evictLocked()
	return nil
}

// Has reports whether a key is indexed (without reading or verifying
// the entry body, and without counting a hit).
func (s *Store) Has(key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Keys returns the indexed keys, sorted (diagnostics and tests).
func (s *Store) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the live entry count.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Dir returns the store directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.TotalBytes = s.total
	return st
}

// Quarantined lists the ".quarantine" sidecars currently in the store
// directory (tests and operators inspecting damage).
func (s *Store) Quarantined() []string {
	if s == nil {
		return nil
	}
	names, _ := filepath.Glob(filepath.Join(s.dir, "*.quarantine"))
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, strings.TrimSuffix(filepath.Base(n), ".cas.quarantine"))
	}
	return out
}
