package cas

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"polyufc/internal/faults"
)

func testKey(i int) string { return Sum([]byte(fmt.Sprintf("key-%d", i)))[:32] }

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"answer":42}`)
	key := testKey(1)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("Get of unknown key reported a hit")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.WarmHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyPayload(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if err := s.Put(key, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload Get = %q, %v", got, ok)
	}
}

func TestWarmStartScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// A new process over the same directory sees every entry as warm.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.WarmEntries != 5 || st.Entries != 5 {
		t.Fatalf("warm scan stats = %+v, want 5 warm entries", st)
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || !bytes.Equal(got, []byte(fmt.Sprintf("payload-%d", i))) {
			t.Fatalf("warm Get(%d) = %q, %v", i, got, ok)
		}
	}
	if st := s2.Stats(); st.WarmHits != 5 {
		t.Fatalf("WarmHits = %d, want 5", st.WarmHits)
	}
}

func TestScanQuarantinesCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	good, bad, misnamed := testKey(10), testKey(11), testKey(12)
	for _, k := range []string{good, bad} {
		if err := s.Put(k, []byte("payload for "+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate one entry (torn write survivor) and plant a valid frame
	// under the wrong file name (identity mismatch).
	badPath := filepath.Join(dir, bad+".cas")
	data, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(badPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeEntry(good, []byte("misfiled"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, misnamed+".cas"), frame, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.WarmEntries != 1 || st.Quarantined != 2 {
		t.Fatalf("stats after damaged scan = %+v, want 1 warm, 2 quarantined", st)
	}
	if _, ok := s2.Get(bad); ok {
		t.Fatal("truncated entry served")
	}
	if got, ok := s2.Get(good); !ok || !bytes.Equal(got, []byte("payload for "+good)) {
		t.Fatalf("good entry lost to neighbours' corruption: %q, %v", got, ok)
	}
	if q := s2.Quarantined(); len(q) != 2 {
		t.Fatalf("quarantine sidecars = %v, want 2", q)
	}
}

// TestBitFlipProperty is the satellite property test: flipping a
// random bit of a persisted entry must never let Get serve a wrong
// payload — the outcome is either a detected corruption (quarantine +
// miss) or the original bytes (a semantically neutral flip, e.g. JSON
// header field case, since Go matches field names case-insensitively).
// It also proves one corrupt entry never costs the store's other
// entries.
func TestBitFlipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	payload := []byte(`{"kernel":"gemm","caps":[1.2,1.8],"nested":{"deep":true}}`)
	other := testKey(99)
	for trial := 0; trial < 60; trial++ {
		dir := t.TempDir()
		s, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		key := testKey(trial)
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(other, []byte("bystander")); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, key+".cas")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bit := rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Half the trials exercise the read path of the already-open
		// store, half the warm-start scan of a fresh one.
		if trial%2 == 1 {
			s, err = Open(dir, nil)
			if err != nil {
				t.Fatalf("trial %d (bit %d): reopen: %v", trial, bit, err)
			}
		}
		got, ok := s.Get(key)
		if ok && !bytes.Equal(got, payload) {
			t.Fatalf("trial %d: flipped bit %d served WRONG payload %q", trial, bit, got)
		}
		if got, ok := s.Get(other); !ok || !bytes.Equal(got, []byte("bystander")) {
			t.Fatalf("trial %d: corruption of %s cost the bystander entry", trial, key)
		}
		if st := s.Stats(); !ok && st.Quarantined != 1 {
			t.Fatalf("trial %d (bit %d): miss without quarantine, stats %+v", trial, bit, st)
		}
	}
}

func TestInjectedReadBitflipQuarantines(t *testing.T) {
	reg := faults.New(1)
	reg.Enable(FaultReadBitflip, faults.Spec{On: []int64{2}})
	s, err := Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(20)
	if err := s.Put(key, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("first read should be clean")
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("bit-flipped read served a payload")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats after injected flip = %+v", st)
	}
	// The slot is free again: a re-fetch stores and serves cleanly.
	if err := s.Put(key, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "precious" {
		t.Fatalf("re-fetched entry = %q, %v", got, ok)
	}
}

func TestPutOverwriteAndConcurrency(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(30)
	done := make(chan struct{})
	for g := 0; g < 6; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				payload := []byte(fmt.Sprintf("v%d", g))
				if err := s.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && len(got) != 2 {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		<-done
	}
}

func TestValidKey(t *testing.T) {
	valid := []string{Sum([]byte("x")), Sum([]byte("x"))[:16], "0123456789abcdef"}
	for _, k := range valid {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false", k)
		}
	}
	invalid := []string{"", "short", "../../etc/passwd", "0123456789ABCDEF",
		"0123456789abcde.", Sum([]byte("x")) + "00", "0123456789abcdeg"}
	for _, k := range invalid {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true", k)
		}
	}
}

func TestDecodeEntryRejectsDamage(t *testing.T) {
	frame, err := EncodeEntry(testKey(40), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if key, body, err := DecodeEntry(frame); err != nil || key != testKey(40) || string(body) != "hello" {
		t.Fatalf("round trip = %q, %q, %v", key, body, err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        []byte("nope\n{}"),
		"no header":        []byte(magic),
		"truncated":        frame[:len(frame)-1],
		"extended":         append(append([]byte{}, frame...), 'x'),
		"header junk":      []byte(magic + "{\"key\":\"0123456789abcdef\",\"len\":0,\"sum\":\"\",\"extra\":1}\n"),
		"not json header":  []byte(magic + "hello\nworld"),
		"negative length":  []byte(magic + "{\"key\":\"0123456789abcdef\",\"len\":-1,\"sum\":\"x\"}\n"),
		"header-only file": []byte(magic + "{\"key\":\"0123456789abcdef\",\"len\":5,\"sum\":\"x\"}"),
	}
	for name, data := range cases {
		if _, _, err := DecodeEntry(data); err == nil {
			t.Errorf("%s: DecodeEntry accepted damaged frame", name)
		}
	}
}
