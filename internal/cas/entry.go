package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// The on-disk entry format is a self-verifying frame: a magic line, one
// JSON header line naming the key, the payload length and the payload's
// SHA-256, then the raw payload bytes. Everything needed to detect a
// torn write, a truncation or a bit flip is inside the file itself, so
// the warm-start scan and every read can validate an entry without any
// out-of-band index.
const magic = "polyufc-cas/1\n"

// header is the JSON line between the magic and the payload.
type header struct {
	Key string `json:"key"`
	Len int64  `json:"len"`
	Sum string `json:"sum"`
}

// Sum returns the hex SHA-256 of a payload — the checksum stored in
// entry headers and exchanged as the X-Polyufc-Sum header by the peer
// protocol.
func Sum(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// ValidKey reports whether key is a well-formed content address: 16 to
// 64 lowercase hex characters. Keys become file names and URL path
// segments, so anything else — path separators, dots, uppercase — is
// rejected outright.
func ValidKey(key string) bool {
	if len(key) < 16 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EncodeEntry frames a payload for disk.
func EncodeEntry(key string, payload []byte) ([]byte, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("cas: invalid key %q", key)
	}
	hdr, err := json.Marshal(header{Key: key, Len: int64(len(payload)), Sum: Sum(payload)})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(magic) + len(hdr) + 1 + len(payload))
	buf.WriteString(magic)
	buf.Write(hdr)
	buf.WriteByte('\n')
	buf.Write(payload)
	return buf.Bytes(), nil
}

// DecodeEntry parses and verifies a framed entry: magic, header shape,
// declared length against the actual payload, and the payload checksum.
// Any mismatch — truncation, trailing garbage, a flipped bit anywhere in
// header or payload — is an error; a decoded entry is a verified entry.
func DecodeEntry(data []byte) (key string, payload []byte, err error) {
	rest, ok := bytes.CutPrefix(data, []byte(magic))
	if !ok {
		return "", nil, fmt.Errorf("cas: bad magic")
	}
	line, body, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return "", nil, fmt.Errorf("cas: truncated header")
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var hdr header
	if err := dec.Decode(&hdr); err != nil {
		return "", nil, fmt.Errorf("cas: bad header: %w", err)
	}
	if dec.More() {
		return "", nil, fmt.Errorf("cas: trailing data after header")
	}
	if !ValidKey(hdr.Key) {
		return "", nil, fmt.Errorf("cas: invalid key in header")
	}
	if hdr.Len < 0 || hdr.Len != int64(len(body)) {
		return "", nil, fmt.Errorf("cas: payload length %d, header declares %d", len(body), hdr.Len)
	}
	if Sum(body) != hdr.Sum {
		return "", nil, fmt.Errorf("cas: payload checksum mismatch")
	}
	return hdr.Key, body, nil
}
