// Package breaker is a generic three-state circuit breaker: the failure
// quarantine every unreliable dependency in the system sits behind. It
// began life inside hw.CapBreaker guarding the UFS driver; the fleet
// cache tier needed the same trip/cooldown/probe machine per peer, so
// the state machine lives here and the callers wrap it around their own
// operations (a driver write, an HTTP lookup).
//
// The contract is the classic one: consecutive failures trip the
// breaker open; while open every operation fast-fails with ErrOpen so
// callers degrade instead of queueing behind a sick dependency; after
// the cooldown a single probe operation is let through and its outcome
// closes or re-opens the breaker.
//
// A Breaker carries its own mutex and is safe for concurrent use. It
// does not execute operations itself — callers bracket their work with
// Allow and Record — so it composes with whatever locking the wrapped
// resource already needs.
package breaker

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Allow while the breaker is quarantining its
// dependency: callers should fall back instead of waiting.
var ErrOpen = errors.New("breaker: open")

// State is the breaker's position.
type State int

// The classic three breaker states.
const (
	// Closed passes every operation through.
	Closed State = iota
	// Open fast-fails every operation with ErrOpen.
	Open
	// HalfOpen lets one probe operation through after the cooldown; its
	// outcome closes or re-opens the breaker.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "state?"
}

// Options tunes a breaker.
type Options struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker open.
	Threshold int
	// Cooldown is how long the breaker stays open before letting one
	// half-open probe through again.
	Cooldown time.Duration
	// Clock overrides time.Now, for deterministic tests.
	Clock func() time.Time
}

// DefaultOptions mirrors a production quarantine: trip after 3
// consecutive failures, probe again after a second.
func DefaultOptions() Options {
	return Options{Threshold: 3, Cooldown: time.Second}
}

// Stats are the breaker's reliability counters.
type Stats struct {
	// Trips counts closed/half-open -> open transitions, Probes the
	// half-open attempts, Rejected the operations fast-failed while
	// open, Recovered the open -> closed transitions.
	Trips, Probes, Rejected, Recovered int64
	// HalfOpens counts open -> half-open transitions (cooldown expiries
	// that let a probe through); ProbeSuccesses and ProbeFailures split
	// the probe outcomes, so operators — and the smoke gates — can
	// assert a dependency actually recovered through a probe rather
	// than merely cooled down.
	HalfOpens, ProbeSuccesses, ProbeFailures int64
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// State is the breaker position at snapshot time.
	State State
}

// Breaker is the trip/cooldown/probe state machine. Use New; the zero
// value has a zero threshold and trips on the first failure.
type Breaker struct {
	mu       sync.Mutex
	opts     Options
	state    State
	consec   int
	openedAt time.Time
	stats    Stats
}

// New builds a breaker. Zero options fall back to defaults.
func New(opts Options) *Breaker {
	def := DefaultOptions()
	if opts.Threshold <= 0 {
		opts.Threshold = def.Threshold
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = def.Cooldown
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Breaker{opts: opts}
}

// Allow decides whether an operation may reach the dependency,
// advancing open -> half-open when the cooldown has elapsed. A nil
// return obliges the caller to Record the operation's outcome — the
// half-open probe's verdict is otherwise never delivered.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.opts.Clock().Sub(b.openedAt) < b.opts.Cooldown {
			b.stats.Rejected++
			return ErrOpen
		}
		b.state = HalfOpen
		b.stats.HalfOpens++
		fallthrough
	default: // HalfOpen: this caller is the probe.
		b.stats.Probes++
		return nil
	}
}

// Record feeds one operation outcome into the trip logic.
func (b *Breaker) Record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		// This outcome is the probe's verdict.
		if failed {
			b.stats.ProbeFailures++
		} else {
			b.stats.ProbeSuccesses++
		}
	}
	if !failed {
		b.consec = 0
		if b.state != Closed {
			b.state = Closed
			b.stats.Recovered++
		}
		return
	}
	b.consec++
	if b.state == HalfOpen || b.consec >= b.opts.Threshold {
		b.state = Open
		b.openedAt = b.opts.Clock()
		b.stats.Trips++
		b.consec = 0
	}
}

// Do runs one operation bracketed by Allow/Record: the common case for
// callers with no extra locking of their own.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err != nil)
	return err
}

// State returns the breaker position, reporting half-open once an open
// breaker's cooldown has elapsed (the next operation will probe).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.opts.Clock().Sub(b.openedAt) >= b.opts.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Stats returns the breaker's counters.
func (b *Breaker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.ConsecutiveFailures = b.consec
	st.State = b.state
	return st
}
