package breaker

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTest(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	return New(Options{Threshold: threshold, Cooldown: cooldown, Clock: clk.Now}), clk
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTest(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected op %d: %v", i, err)
		}
		b.Record(true)
		if got := b.State(); got != Closed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected third op: %v", err)
	}
	b.Record(true)
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker Allow = %v, want ErrOpen", err)
	}
	st := b.Stats()
	if st.Trips != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 trip, 1 rejected", st)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTest(3, time.Second)
	b.Record(true)
	b.Record(true)
	b.Record(false)
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (streak reset by success)", got)
	}
	if st := b.Stats(); st.ConsecutiveFailures != 2 {
		t.Fatalf("ConsecutiveFailures = %d, want 2", st.ConsecutiveFailures)
	}
}

func TestBreakerProbeRecovery(t *testing.T) {
	b, clk := newTest(1, time.Second)
	b.Record(true) // trips immediately
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow before cooldown = %v, want ErrOpen", err)
	}
	clk.Advance(time.Second)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(false)
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	st := b.Stats()
	if st.HalfOpens != 1 || st.ProbeSuccesses != 1 || st.Recovered != 1 {
		t.Fatalf("stats = %+v, want 1 half-open, 1 probe success, 1 recovered", st)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTest(1, time.Second)
	b.Record(true)
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(true)
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The clock has not advanced since the re-trip: still rejecting.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow after failed probe = %v, want ErrOpen", err)
	}
	st := b.Stats()
	if st.ProbeFailures != 1 || st.Trips != 2 {
		t.Fatalf("stats = %+v, want 1 probe failure, 2 trips", st)
	}
}

func TestBreakerDo(t *testing.T) {
	b, clk := newTest(2, time.Second)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("Do = %v, want boom", err)
		}
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open = %v, want ErrOpen (op must not run)", err)
	}
	clk.Advance(time.Second)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe Do = %v, want nil", err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerConcurrency(t *testing.T) {
	b, _ := newTest(3, time.Millisecond)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(fail bool) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				if b.Allow() == nil {
					b.Record(fail)
				}
				b.State()
				b.Stats()
			}
		}(i%2 == 0)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
