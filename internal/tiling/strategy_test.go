package tiling

import (
	"reflect"
	"strings"
	"testing"

	"polyufc/internal/cachemodel"
	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/pluto"
	"polyufc/internal/workloads"
)

func testCtx() Context {
	return Context{
		Cache:   hw.BDW().Cache,
		Threads: 1,
		Pluto:   pluto.DefaultOptions(),
	}
}

// nestFrom builds an affine workload at Test size and returns its idx-th
// nest.
func nestFrom(t *testing.T, kernel string, idx int) *ir.Nest {
	t.Helper()
	k, err := workloads.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.BuildAffine(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	var nests []*ir.Nest
	for _, f := range mod.Funcs {
		for _, op := range f.Ops {
			if n, ok := op.(*ir.Nest); ok {
				nests = append(nests, n)
			}
		}
	}
	if idx >= len(nests) {
		t.Fatalf("%s has %d nests, want index %d", kernel, len(nests), idx)
	}
	return nests[idx]
}

// The pluto strategy must be a pure wrapper: identical output nest and
// metadata to calling pluto.Optimize directly with the same options.
func TestPlutoStrategyWrapsOptimize(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	ctx := testCtx()
	want, err := pluto.Optimize(nest, ctx.Pluto)
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(Spec{Name: NamePluto})
	got, info, err := s.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Nest) {
		t.Fatal("pluto strategy nest differs from pluto.Optimize")
	}
	if info.Tiled != want.Tiled || (info.Tiled && info.TileSize != want.TileSize) {
		t.Fatalf("metadata %+v, want Tiled=%v TileSize=%d", info, want.Tiled, want.TileSize)
	}
	if info.Strategy != NamePluto {
		t.Fatalf("strategy %q, want pluto", info.Strategy)
	}
}

func TestPlutoStrategySizeOverride(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	s := MustNew(Spec{Name: NamePluto, Size: 16})
	_, info, err := s.Apply(nest, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Tiled || info.TileSize != 16 {
		t.Fatalf("metadata %+v, want tiled at 16", info)
	}
}

// leafTile must pick a power of two in [base, 256], derived from the
// iteration-space extent: gemm's Test-size update nest is 40^3, whose
// geometric-mean extent 40 yields sqrt(40) ~ 6.3, clamped up to base 8 —
// deliberately different from Pluto's fixed 32.
func TestCacheObliviousLeafTile(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	if got := leafTile(nest, DefaultBase); got != 8 {
		t.Fatalf("leafTile(gemm@Test) = %d, want 8", got)
	}
	s := MustNew(Spec{Name: NameCacheOblivious})
	_, info, err := s.Apply(nest, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Tiled || info.TileSize != 8 {
		t.Fatalf("metadata %+v, want tiled at 8", info)
	}
	if info.TileSize == pluto.DefaultTileSize {
		t.Fatal("cacheoblivious chose the pluto default; no divergence")
	}
}

func TestClampPow2(t *testing.T) {
	cases := []struct{ v, lo, hi, want int64 }{
		{6, 8, 256, 8},
		{8, 8, 256, 8},
		{15, 8, 256, 8},
		{16, 8, 256, 16},
		{1000, 8, 256, 256},
		{3, 2, 256, 2},
		{40, 8, 256, 32},
	}
	for _, tc := range cases {
		if got := clampPow2(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("clampPow2(%d,%d,%d) = %d, want %d", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

// The latency strategy must choose deterministically from the probed
// ladder prefix and report the size it chose.
func TestLatencyStrategyDeterministic(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	ctx := testCtx()
	s := MustNew(Spec{Name: NameLatency})
	out1, info1, err := s.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info1.Tiled {
		t.Fatalf("latency left gemm untiled: %+v", info1)
	}
	found := false
	for _, sz := range latencyLadder[:DefaultProbe] {
		if info1.TileSize == sz {
			found = true
		}
	}
	if !found {
		t.Fatalf("tile size %d not on probed ladder %v", info1.TileSize, latencyLadder[:DefaultProbe])
	}
	out2, info2, err := s.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info1 != info2 || !reflect.DeepEqual(out1, out2) {
		t.Fatal("latency strategy is not deterministic")
	}
}

// A probe bound of 1 leaves exactly one candidate; the strategy must
// pick it.
func TestLatencyProbeBound(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	s := MustNew(Spec{Name: NameLatency, Probe: 1})
	_, info, err := s.Apply(nest, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Tiled || info.TileSize != latencyLadder[0] {
		t.Fatalf("metadata %+v, want tiled at %d", info, latencyLadder[0])
	}
}

// Depth-1 nests are outside the tileable class under every strategy:
// all must pass them through untiled without error.
func TestUntileableNestPassesThrough(t *testing.T) {
	A := ir.NewArray("x", 8, 64)
	nest := &ir.Nest{Label: "vec_scale", Root: ir.SimpleLoop("i",
		ir.AffConst(0), ir.AffConst(63),
		&ir.Statement{
			Name:  "S",
			Flops: 1,
			Accesses: []ir.Access{
				{Array: A, Index: []ir.AffExpr{ir.AffVar("i")}},
				{Array: A, Write: true, Index: []ir.AffExpr{ir.AffVar("i")}},
			},
		})}
	for _, name := range []string{NamePluto, NameCacheOblivious, NameLatency, NameAuto} {
		s := MustNew(Spec{Name: name})
		out, info, err := s.Apply(nest, testCtx())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Tiled {
			t.Fatalf("%s tiled a depth-1 nest: %+v", name, info)
		}
		if out == nil {
			t.Fatalf("%s returned nil nest", name)
		}
	}
}

// auto must score candidates by predicted DRAM volume, never select one
// that errored, and report the winner's name.
func TestAutoSkipsErroredCandidates(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	ctx := testCtx()
	s := MustNew(Spec{Name: NameAuto})

	_, info, err := s.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.Strategy, "auto:") {
		t.Fatalf("strategy %q, want auto:<winner>", info.Strategy)
	}
	winner := strings.TrimPrefix(info.Strategy, "auto:")

	// Poison the winner; auto must pick someone else.
	ctx.Faults = faults.New(1)
	ctx.Faults.Enable("tiling."+winner, faults.Spec{P: 1})
	_, info2, err := s.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Strategy == "auto:"+winner {
		t.Fatalf("auto selected the poisoned strategy %q", winner)
	}

	// Poison everyone: auto must error rather than pick a failed
	// candidate.
	ctx.Faults = faults.New(1)
	for _, fp := range []string{FaultPluto, FaultCacheOblivious, FaultLatency} {
		ctx.Faults.Enable(fp, faults.Spec{P: 1})
	}
	if _, _, err := s.Apply(nest, ctx); err == nil {
		t.Fatal("auto succeeded with every candidate poisoned")
	}
}

// Strategies must not mutate their input nest.
func TestApplyDoesNotMutateInput(t *testing.T) {
	for _, name := range []string{NamePluto, NameCacheOblivious, NameLatency, NameAuto} {
		nest := nestFrom(t, "gemm", 1)
		before := nest.Clone()
		s := MustNew(Spec{Name: name})
		if _, _, err := s.Apply(nest, testCtx()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(nest, before) {
			t.Fatalf("%s mutated its input nest", name)
		}
	}
}

// A CapEDP callback overrides the legacy DRAM-volume ranking. The stub
// scores candidates by arrival order (auto tries pluto, cacheoblivious,
// latency), so the first candidate gets the best EDP and must win even
// though the volume rule prefers a different strategy for this nest.
func TestAutoCapEDPOverridesVolumeScore(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	ctx := testCtx()
	auto := MustNew(Spec{Name: NameAuto})
	_, volInfo, err := auto.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if volInfo.Strategy == "auto:"+NamePluto {
		t.Fatalf("precondition: the volume rule already picks pluto on this nest; choose one where it does not")
	}

	calls := 0
	ctx.CapEDP = func(n *ir.Nest, cm *cachemodel.Result) (float64, bool) {
		calls++
		return float64(calls), true // ascending: first candidate scores best
	}
	_, edpInfo, err := auto.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("CapEDP consulted for %d candidates, want 3", calls)
	}
	if edpInfo.Strategy != "auto:"+NamePluto {
		t.Fatalf("CapEDP-scored auto picked %s, want the best-EDP candidate auto:%s", edpInfo.Strategy, NamePluto)
	}
	if edpInfo.Strategy == volInfo.Strategy {
		t.Fatal("CapEDP stub did not flip the selection")
	}
}

// CapEDP failures degrade per candidate, not per nest: a callback that
// always reports failure reproduces the legacy volume winner exactly,
// and one that scores only a single candidate makes that candidate win
// regardless of how bad its EDP is (scored candidates outrank unscored
// ones).
func TestAutoCapEDPFallback(t *testing.T) {
	nest := nestFrom(t, "gemm", 1)
	ctx := testCtx()
	auto := MustNew(Spec{Name: NameAuto})
	_, volInfo, err := auto.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}

	ctx.CapEDP = func(n *ir.Nest, cm *cachemodel.Result) (float64, bool) { return 0, false }
	_, fbInfo, err := auto.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fbInfo.Strategy != volInfo.Strategy {
		t.Fatalf("all-failed CapEDP picked %s, want the volume winner %s", fbInfo.Strategy, volInfo.Strategy)
	}

	if volInfo.Strategy == "auto:"+NameCacheOblivious {
		t.Fatalf("precondition: the volume winner is already cacheoblivious")
	}
	calls := 0
	ctx.CapEDP = func(n *ir.Nest, cm *cachemodel.Result) (float64, bool) {
		calls++
		// Score only the second candidate (cacheoblivious), terribly.
		return 1e12, calls == 2
	}
	_, oneInfo, err := auto.Apply(nest, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if oneInfo.Strategy != "auto:"+NameCacheOblivious {
		t.Fatalf("partially-scored auto picked %s, want the only scored candidate auto:%s",
			oneInfo.Strategy, NameCacheOblivious)
	}
}
