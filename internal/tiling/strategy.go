package tiling

import (
	"fmt"
	"math"

	"polyufc/internal/cachemodel"
	"polyufc/internal/cachesim"
	"polyufc/internal/faults"
	"polyufc/internal/ir"
	"polyufc/internal/pluto"
)

// Fault-point names probed at the top of each concrete strategy's Apply
// (and therefore inside auto's candidate runs). A nil registry is a
// no-op, so production compiles pay nothing.
const (
	FaultPluto          = "tiling.pluto"
	FaultCacheOblivious = "tiling.cacheoblivious"
	FaultLatency        = "tiling.latency"
)

// Context carries the per-compile environment a strategy may consult:
// the target's cache hierarchy (for model-scored strategies), the
// thread count the cachemodel stage will use, the base pluto options
// (legality, permutation and parallelization flags plus the default
// tile size) and the fault registry.
type Context struct {
	Cache   cachesim.Config
	Threads int
	Pluto   pluto.Options
	Faults  *faults.Registry
	// CapEDP, when non-nil, scores a transformed nest by the EDP of the
	// uncore cap PolyUFC-SEARCH would select for it (lower is better) —
	// the objective the compiler actually optimizes. The auto
	// meta-strategy prefers it over its raw DRAM-volume score: a
	// candidate that admits a deeper cap can win even with slightly more
	// traffic, and minimizing QDRAM alone picks the wrong one exactly
	// there. ok = false (the model fit or search failed) falls back to
	// the volume score for that candidate. Populated by core's tile
	// stage; nil keeps the legacy volume-only selection.
	CapEDP func(nest *ir.Nest, cm *cachemodel.Result) (edp float64, ok bool)
}

// NestInfo is the per-nest tiling metadata a strategy reports; it is
// surfaced in KernelReport and journal records and snapshotted by the
// pipeline memo.
type NestInfo struct {
	// Strategy is the concrete strategy that transformed the nest; the
	// auto meta-strategy reports "auto:<winner>".
	Strategy string `json:"strategy"`
	// Tiled reports whether the nest was actually tiled (imperfect or
	// non-permutable nests pass through untiled under every strategy).
	Tiled bool `json:"tiled"`
	// TileSize is the tile size applied when Tiled (0 otherwise).
	TileSize int64 `json:"tile_size,omitempty"`
}

// Strategy is a pluggable tile-stage policy: a per-nest transform
// returning the (possibly) tiled nest plus tiling metadata. Apply must
// not modify the input nest.
type Strategy interface {
	// Name is the registered strategy name ("pluto", ...).
	Name() string
	// Fingerprint is the canonical options hash folded into cache keys
	// and stage salts (see Spec.Fingerprint).
	Fingerprint() string
	// Apply transforms one nest. On error the caller decides (via the
	// degrade policy) whether to fail the compile or fall back untiled
	// for that nest only.
	Apply(nest *ir.Nest, ctx Context) (*ir.Nest, NestInfo, error)
}

// New resolves a parsed spec to a Strategy. The zero-value spec yields
// the pluto strategy.
func New(spec Spec) (Strategy, error) {
	spec = spec.Normalize()
	switch spec.Name {
	case NamePluto:
		return &plutoStrategy{spec: spec}, nil
	case NameCacheOblivious:
		return &cobStrategy{spec: spec}, nil
	case NameLatency:
		return &latencyStrategy{spec: spec}, nil
	case NameAuto:
		return &autoStrategy{spec: spec}, nil
	default:
		return nil, fmt.Errorf("tiling: unknown strategy %q", spec.Name)
	}
}

// MustNew is New for specs already validated by ParseSpec.
func MustNew(spec Spec) Strategy {
	s, err := New(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// plutoStrategy reproduces the pre-strategy pipeline: pluto.Optimize
// with the Context's pluto options, optionally overriding the tile size
// from the spec. With a zero Size it is byte-identical to the old
// hard-wired stageTile.
type plutoStrategy struct{ spec Spec }

func (s *plutoStrategy) Name() string        { return NamePluto }
func (s *plutoStrategy) Fingerprint() string { return s.spec.Fingerprint() }

func (s *plutoStrategy) Apply(nest *ir.Nest, ctx Context) (*ir.Nest, NestInfo, error) {
	if err := ctx.Faults.Hit(FaultPluto); err != nil {
		return nil, NestInfo{}, fmt.Errorf("tiling: pluto on %s: %w", nest.Label, err)
	}
	opts := ctx.Pluto
	if s.spec.Size > 0 {
		opts.TileSize = s.spec.Size
	}
	return runPluto(nest, opts, NamePluto)
}

// cobStrategy approximates PCOT-style cache-oblivious tiling: a
// recursive space bisection halts once a sub-block's per-dimension
// extent drops to the leaf size, so the effective tile is a power of
// two derived from the nest's own iteration-space geometry — the
// geometric mean extent E = tripcount^(1/depth) bisected log2(sqrt(E))
// times, i.e. the largest power of two <= sqrt(E) — clamped to
// [base, 256] and independent of any cache parameter. The resulting
// miss curve tracks the problem size where a fixed 32 does not.
type cobStrategy struct{ spec Spec }

func (s *cobStrategy) Name() string        { return NameCacheOblivious }
func (s *cobStrategy) Fingerprint() string { return s.spec.Fingerprint() }

func (s *cobStrategy) Apply(nest *ir.Nest, ctx Context) (*ir.Nest, NestInfo, error) {
	if err := ctx.Faults.Hit(FaultCacheOblivious); err != nil {
		return nil, NestInfo{}, fmt.Errorf("tiling: cacheoblivious on %s: %w", nest.Label, err)
	}
	base := s.spec.Base
	if base <= 0 {
		base = DefaultBase
	}
	opts := ctx.Pluto
	opts.TileSize = leafTile(nest, base)
	return runPluto(nest, opts, NameCacheOblivious)
}

// leafTile computes the recursive-bisection leaf size for a nest: the
// largest power of two no greater than the square root of the geometric
// mean per-dimension extent, clamped to [base, 256]. Nests whose trip
// count cannot be established statically use the base leaf.
func leafTile(nest *ir.Nest, base int64) int64 {
	depth := 0
	nest.WalkLoops(func(_ *ir.Loop, d int) {
		if d+1 > depth {
			depth = d + 1
		}
	})
	tc, err := nest.TripCount()
	if err != nil || tc <= 0 || depth == 0 {
		return clampPow2(base, base, 256)
	}
	extent := math.Pow(float64(tc), 1/float64(depth))
	return clampPow2(int64(math.Sqrt(extent)), base, 256)
}

// clampPow2 returns the largest power of two <= v, clamped to [lo, hi].
func clampPow2(v, lo, hi int64) int64 {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	p := int64(1)
	for p*2 <= v {
		p *= 2
	}
	if p < 2 {
		p = 2
	}
	return p
}

// latencyLadder is the candidate tile-size ladder the latency strategy
// probes, smallest first; Spec.Probe bounds how many are modeled.
var latencyLadder = []int64{8, 16, 32, 64, 128, 256}

// Nominal per-level hit latencies (cycles) used to turn PolyUFC-CM
// miss counts into a scalar access-latency score, plus the DRAM miss
// penalty. Only the relative ordering matters for tile selection.
var (
	levelLatency = []float64{4, 12, 40, 80}
	dramLatency  = 200.0
)

// latencyExactBelow bounds the exact-trace route inside candidate
// scoring: nests at most this many instances are probed through
// internal/cachesim, larger ones through the analytic counts, keeping
// compile cost low either way.
const latencyExactBelow = 1 << 12

// latencyStrategy derives the tile size from miss-ratio scaling: each
// candidate size on the ladder is tiled speculatively, its miss profile
// modeled by PolyUFC-CM (exact cachesim trace for small nests, analytic
// counts for large ones), and the candidate minimizing the modeled
// total access latency wins. Ties break toward the smaller size.
type latencyStrategy struct{ spec Spec }

func (s *latencyStrategy) Name() string        { return NameLatency }
func (s *latencyStrategy) Fingerprint() string { return s.spec.Fingerprint() }

func (s *latencyStrategy) Apply(nest *ir.Nest, ctx Context) (*ir.Nest, NestInfo, error) {
	if err := ctx.Faults.Hit(FaultLatency); err != nil {
		return nil, NestInfo{}, fmt.Errorf("tiling: latency on %s: %w", nest.Label, err)
	}
	probe := s.spec.Probe
	if probe <= 0 {
		probe = DefaultProbe
	}
	if probe > len(latencyLadder) {
		probe = len(latencyLadder)
	}

	var (
		best     *ir.Nest
		bestInfo NestInfo
		bestCost = math.Inf(1)
		lastErr  error
	)
	for _, size := range latencyLadder[:probe] {
		opts := ctx.Pluto
		opts.TileSize = size
		out, info, err := runPluto(nest, opts, NameLatency)
		if err != nil {
			lastErr = err
			continue
		}
		if !info.Tiled {
			// The nest is outside the tileable class; every candidate
			// would produce the same untransformed nest.
			return out, info, nil
		}
		cost, err := modeledLatency(out, ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if cost < bestCost {
			best, bestInfo, bestCost = out, info, cost
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("no candidate tile size")
		}
		return nil, NestInfo{}, fmt.Errorf("tiling: latency on %s: %w", nest.Label, lastErr)
	}
	return best, bestInfo, nil
}

// modeledLatency scores a transformed nest: per-level hits weighted by
// nominal latencies plus LLC misses at the DRAM penalty.
func modeledLatency(nest *ir.Nest, ctx Context) (float64, error) {
	cm, err := cachemodel.Analyze(nest, ctx.Cache, cmScoreOptions(ctx))
	if err != nil {
		return 0, err
	}
	var cost float64
	for i, lv := range cm.Levels {
		lat := levelLatency[len(levelLatency)-1]
		if i < len(levelLatency) {
			lat = levelLatency[i]
		}
		cost += float64(lv.Accesses-lv.Misses) * lat
	}
	cost += float64(cm.LLC().Misses) * dramLatency
	return cost, nil
}

func cmScoreOptions(ctx Context) cachemodel.Options {
	opts := cachemodel.DefaultOptions()
	opts.Threads = ctx.Threads
	opts.ExactBelow = latencyExactBelow
	return opts
}

// autoStrategy races the three concrete strategies and keeps the winner.
// With Context.CapEDP armed (the compile pipeline always arms it) a
// candidate is scored by the EDP of the cap the search selects for its
// transformed nest — the compiler's actual objective; the raw DRAM miss
// volume (QDRAM) and total LLC misses only break ties, then candidate
// order, so an across-the-board tie behaves like pluto. Without CapEDP
// (or for candidates where it fails) the legacy volume score applies.
// Candidates that error — including injected tiling.<name> faults — are
// skipped and never selected; auto errors only when every candidate
// failed.
type autoStrategy struct{ spec Spec }

func (s *autoStrategy) Name() string        { return NameAuto }
func (s *autoStrategy) Fingerprint() string { return s.spec.Fingerprint() }

// autoScore orders auto's candidates: EDP-scored candidates beat
// volume-only ones, lower EDP wins, then lower QDRAM, then fewer total
// misses.
type autoScore struct {
	edp    float64
	hasEDP bool
	q      int64
	miss   int64
}

func (a autoScore) betterThan(b autoScore) bool {
	if a.hasEDP != b.hasEDP {
		return a.hasEDP
	}
	if a.hasEDP && a.edp != b.edp {
		return a.edp < b.edp
	}
	if a.q != b.q {
		return a.q < b.q
	}
	return a.miss < b.miss
}

func (s *autoStrategy) Apply(nest *ir.Nest, ctx Context) (*ir.Nest, NestInfo, error) {
	candidates := []Strategy{
		&plutoStrategy{spec: Spec{Name: NamePluto}},
		&cobStrategy{spec: Spec{Name: NameCacheOblivious}},
		&latencyStrategy{spec: Spec{Name: NameLatency}},
	}
	var (
		best      *ir.Nest
		bestInfo  NestInfo
		bestScore autoScore
		haveBest  bool
		lastErr   error
	)
	for _, cand := range candidates {
		out, info, err := cand.Apply(nest, ctx)
		if err != nil {
			lastErr = err
			continue
		}
		cm, err := cachemodel.Analyze(out, ctx.Cache, cmScoreOptions(ctx))
		if err != nil {
			lastErr = err
			continue
		}
		score := autoScore{q: cm.QDRAM}
		for _, lv := range cm.Levels {
			score.miss += lv.Misses
		}
		if ctx.CapEDP != nil {
			score.edp, score.hasEDP = ctx.CapEDP(out, cm)
		}
		if !haveBest || score.betterThan(bestScore) {
			best = out
			bestInfo = NestInfo{Strategy: NameAuto + ":" + cand.Name(), Tiled: info.Tiled, TileSize: info.TileSize}
			bestScore = score
			haveBest = true
		}
	}
	if !haveBest {
		if lastErr == nil {
			lastErr = fmt.Errorf("no candidates")
		}
		return nil, NestInfo{}, fmt.Errorf("tiling: auto on %s: all candidates failed: %w", nest.Label, lastErr)
	}
	return best, bestInfo, nil
}

// runPluto funnels every strategy through the shared pluto legality and
// transform machinery with the given options, translating the pluto
// result into strategy metadata.
func runPluto(nest *ir.Nest, opts pluto.Options, name string) (*ir.Nest, NestInfo, error) {
	res, err := pluto.Optimize(nest, opts)
	if err != nil {
		return nil, NestInfo{}, fmt.Errorf("tiling: %s on %s: %w", name, nest.Label, err)
	}
	info := NestInfo{Strategy: name, Tiled: res.Tiled}
	if res.Tiled {
		info.TileSize = res.TileSize
	}
	return res.Nest, info, nil
}
