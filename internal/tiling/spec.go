// Package tiling makes the tile stage of the compile pipeline pluggable:
// a Strategy names a tile-size policy, transforms one nest at a time and
// reports per-nest metadata (which strategy ran, whether it tiled, the
// tile size it chose). The legality machinery — dependence analysis,
// permutable-band detection, rectangular tiling math, parallel marking —
// is shared with internal/pluto for every strategy; what varies is how
// the tile size is chosen:
//
//   - "pluto" reproduces the paper's baseline exactly: the fixed tile
//     size of the Config's pluto.Options (default 32). Byte-identical to
//     the pre-strategy pipeline.
//   - "cacheoblivious" approximates PCOT-style recursive space
//     partitioning: the tile size is a power of two derived from the
//     nest's own iteration-space extent (the leaf a recursive bisection
//     would bottom out at), independent of any cache parameter — its
//     miss curve is size-robust where a fixed 32 is not.
//   - "latency" derives the tile size from miss-ratio scaling: a small
//     ladder of candidate sizes is probed through PolyUFC-CM (which
//     routes small nests through the exact internal/cachesim trace) and
//     the candidate with the lowest modeled access latency wins.
//   - "auto" runs the three concrete strategies as candidates, scores
//     each transformed nest by PolyUFC-CM-predicted DRAM miss volume,
//     and keeps the winner. Candidates that error are skipped, never
//     selected.
//
// A Spec is the parsed CLI/serve form of a strategy choice
// ("-tiling latency:probe=3"); its Fingerprint feeds cache keys, stage
// salts and plan-table identities so distinct strategies never share
// memoized artifacts.
package tiling

import (
	"fmt"
	"strconv"
	"strings"
)

// Strategy names.
const (
	NamePluto          = "pluto"
	NameCacheOblivious = "cacheoblivious"
	NameLatency        = "latency"
	NameAuto           = "auto"
)

// Names lists the registered strategy names in canonical order (the
// order auto probes its candidates in).
func Names() []string {
	return []string{NamePluto, NameCacheOblivious, NameLatency, NameAuto}
}

// Spec is a parsed tiling-strategy choice. The zero value means the
// default pluto strategy (the pre-strategy pipeline), so a zero-value
// core.Config keeps compiling byte-identically.
type Spec struct {
	// Name selects the strategy; empty means "pluto".
	Name string
	// Size overrides the pluto strategy's tile size (0 keeps the
	// Config's pluto.Options value).
	Size int64
	// Probe bounds how many candidate tile sizes the latency strategy
	// models per nest (0 selects DefaultProbe).
	Probe int
	// Base is the cacheoblivious strategy's smallest leaf tile (0
	// selects DefaultBase).
	Base int64
}

// Defaults for the optional Spec knobs.
const (
	DefaultProbe = 4
	DefaultBase  = 8
)

// Normalize resolves the zero value to the canonical pluto spec.
func (s Spec) Normalize() Spec {
	if s.Name == "" {
		s.Name = NamePluto
	}
	return s
}

// Fingerprint canonicalizes the spec for cache keys, stage salts and
// plan-table identities: equal fingerprints select identical transforms,
// distinct strategies (or options) never share memoized artifacts.
func (s Spec) Fingerprint() string {
	s = s.Normalize()
	switch s.Name {
	case NamePluto:
		if s.Size > 0 {
			return fmt.Sprintf("%s:size=%d", NamePluto, s.Size)
		}
	case NameCacheOblivious:
		if s.Base > 0 && s.Base != DefaultBase {
			return fmt.Sprintf("%s:base=%d", NameCacheOblivious, s.Base)
		}
	case NameLatency:
		if s.Probe > 0 && s.Probe != DefaultProbe {
			return fmt.Sprintf("%s:probe=%d", NameLatency, s.Probe)
		}
	}
	return s.Name
}

// String renders the canonical spec form (same as Fingerprint).
func (s Spec) String() string { return s.Fingerprint() }

// ParseSpec parses a CLI tiling spec: a strategy name optionally followed
// by comma-separated key=value options after a colon —
//
//	pluto            pluto:size=64
//	cacheoblivious   cacheoblivious:base=16
//	latency          latency:probe=3
//	auto
//
// An empty spec selects the default pluto strategy.
func ParseSpec(spec string) (Spec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Spec{Name: NamePluto}, nil
	}
	name, opts, hasOpts := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	var s Spec
	switch name {
	case NamePluto, NameCacheOblivious, NameLatency, NameAuto:
		s.Name = name
	default:
		return Spec{}, fmt.Errorf("tiling: unknown strategy %q (want one of %s)",
			name, strings.Join(Names(), ", "))
	}
	if !hasOpts {
		return s, nil
	}
	if strings.TrimSpace(opts) == "" {
		return Spec{}, fmt.Errorf("tiling: bad spec %q (empty option list after %q)", spec, name)
	}
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			return Spec{}, fmt.Errorf("tiling: bad spec %q (empty option)", spec)
		}
		key, val, ok := strings.Cut(opt, "=")
		if !ok || key == "" || val == "" {
			return Spec{}, fmt.Errorf("tiling: bad option %q in %q (want key=value)", opt, spec)
		}
		switch name + "." + key {
		case NamePluto + ".size":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 2 || n > 1<<20 {
				return Spec{}, fmt.Errorf("tiling: bad tile size %q in %q (want 2 <= size <= %d)", val, spec, 1<<20)
			}
			s.Size = n
		case NameCacheOblivious + ".base":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 2 || n > 1<<16 {
				return Spec{}, fmt.Errorf("tiling: bad base tile %q in %q (want 2 <= base <= %d)", val, spec, 1<<16)
			}
			s.Base = n
		case NameLatency + ".probe":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > len(latencyLadder) {
				return Spec{}, fmt.Errorf("tiling: bad probe count %q in %q (want 1 <= probe <= %d)", val, spec, len(latencyLadder))
			}
			s.Probe = n
		default:
			return Spec{}, fmt.Errorf("tiling: strategy %q does not take option %q (in %q)", name, key, spec)
		}
	}
	return s, nil
}
