package tiling

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		fp   string
	}{
		{"", Spec{Name: NamePluto}, "pluto"},
		{"pluto", Spec{Name: NamePluto}, "pluto"},
		{" pluto ", Spec{Name: NamePluto}, "pluto"},
		{"pluto:size=64", Spec{Name: NamePluto, Size: 64}, "pluto:size=64"},
		{"cacheoblivious", Spec{Name: NameCacheOblivious}, "cacheoblivious"},
		{"cacheoblivious:base=16", Spec{Name: NameCacheOblivious, Base: 16}, "cacheoblivious:base=16"},
		// The default base canonicalizes to the bare name.
		{"cacheoblivious:base=8", Spec{Name: NameCacheOblivious, Base: 8}, "cacheoblivious"},
		{"latency", Spec{Name: NameLatency}, "latency"},
		{"latency:probe=3", Spec{Name: NameLatency, Probe: 3}, "latency:probe=3"},
		{"latency:probe=4", Spec{Name: NameLatency, Probe: 4}, "latency"},
		{"auto", Spec{Name: NameAuto}, "auto"},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if fp := got.Fingerprint(); fp != tc.fp {
			t.Errorf("ParseSpec(%q).Fingerprint() = %q, want %q", tc.in, fp, tc.fp)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"hilbert",
		"pluto:",
		"pluto:size",
		"pluto:size=",
		"pluto:size=1",
		"pluto:size=abc",
		"pluto:probe=3",
		"cacheoblivious:base=0",
		"latency:probe=0",
		"latency:probe=99",
		"auto:size=8",
		"latency:probe=3,,",
		"pluto:=32",
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", in)
		}
	}
}

// The zero value must be indistinguishable from an explicit pluto spec:
// they share a fingerprint (and hence memo entries), which is what makes
// the zero-value Config byte-identical to -tiling pluto.
func TestZeroValueIsPluto(t *testing.T) {
	var zero Spec
	if zero.Fingerprint() != "pluto" {
		t.Fatalf("zero Spec fingerprint %q, want pluto", zero.Fingerprint())
	}
	p, _ := ParseSpec("pluto")
	if zero.Fingerprint() != p.Fingerprint() {
		t.Fatalf("zero and explicit pluto fingerprints differ: %q vs %q",
			zero.Fingerprint(), p.Fingerprint())
	}
	s, err := New(zero)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != NamePluto {
		t.Fatalf("zero spec resolves to %q, want pluto", s.Name())
	}
}

// Fingerprints of distinct strategies (and distinct options of one
// strategy) must never collide — they partition every memo layer.
func TestFingerprintsDistinct(t *testing.T) {
	specs := []string{
		"pluto", "pluto:size=64", "pluto:size=16",
		"cacheoblivious", "cacheoblivious:base=16",
		"latency", "latency:probe=2", "auto",
	}
	seen := map[string]string{}
	for _, in := range specs {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		fp := s.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("specs %q and %q share fingerprint %q", prev, in, fp)
		}
		seen[fp] = in
	}
}

func FuzzParseTilingSpec(f *testing.F) {
	for _, seed := range []string{
		"", "pluto", "pluto:size=64", "cacheoblivious", "cacheoblivious:base=16",
		"latency", "latency:probe=3", "auto", "auto:x=1", "pluto:size=",
		"latency:probe=0", "bogus", "pluto:size=32,size=64", " latency : probe=2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		// Accepted specs must resolve to a strategy whose canonical form
		// re-parses to the identical spec (fingerprint is a fixed point).
		st, err := New(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q) accepted but New failed: %v", in, err)
		}
		fp := s.Fingerprint()
		if !strings.HasPrefix(fp, s.Normalize().Name) {
			t.Fatalf("fingerprint %q does not start with strategy name %q", fp, s.Name)
		}
		if st.Fingerprint() != fp {
			t.Fatalf("strategy fingerprint %q != spec fingerprint %q", st.Fingerprint(), fp)
		}
		rt, err := ParseSpec(fp)
		if err != nil {
			t.Fatalf("fingerprint %q of accepted spec %q does not re-parse: %v", fp, in, err)
		}
		if rt.Fingerprint() != fp {
			t.Fatalf("fingerprint not a fixed point: %q -> %q", fp, rt.Fingerprint())
		}
	})
}
