package lower

import (
	"fmt"

	"polyufc/internal/ir"
)

// LinalgToAffine lowers every linalg op in the module to an affine loop
// nest. Caps and affine ops pass through.
func LinalgToAffine(m *ir.Module) error {
	for _, f := range m.Funcs {
		var out []ir.Op
		for i, op := range f.Ops {
			if op.Dialect() != ir.DialectLinalg {
				out = append(out, op)
				continue
			}
			nest, err := LowerLinalgOp(op, fmt.Sprintf("%s_%d", f.Name, i))
			if err != nil {
				return err
			}
			out = append(out, nest)
		}
		f.Ops = out
	}
	return nil
}

// LinalgToAffinePass wraps LinalgToAffine as a pass.
func LinalgToAffinePass() ir.Pass {
	return ir.PassFunc{PassName: "lower-linalg-to-affine", Fn: LinalgToAffine}
}

// LowerLinalgOp lowers a single linalg op to an affine nest.
func LowerLinalgOp(op ir.Op, label string) (*ir.Nest, error) {
	var nest *ir.Nest
	var err error
	switch x := op.(type) {
	case *ir.LinalgMatmul:
		nest = lowerMatmul(x)
	case *ir.LinalgBatchMatmul:
		nest = lowerBatchMatmul(x)
	case *ir.LinalgConv2D:
		nest = lowerConv2D(x)
	case *ir.LinalgElemUnary:
		nest = lowerElemwise(x.In, x.Out, nil, false, 1, "unary_"+x.Kind.String())
	case *ir.LinalgElemBinary:
		nest = lowerElemwise(x.A, x.Out, x.B, x.BroadcastB, 1, "binary_"+x.Kind.String())
	case *ir.LinalgRowReduce:
		nest = lowerRowReduce(x)
	case *ir.LinalgFill:
		nest = lowerFill(x)
	default:
		err = fmt.Errorf("lower: no affine lowering for %s", op.OpName())
	}
	if err != nil {
		return nil, err
	}
	nest.Label = label + "_" + op.OpName()
	origin := op.Origin()
	if origin == "" {
		origin = op.OpName()
	} else {
		origin = origin + "/" + op.OpName()
	}
	nest.SetOrigin(origin)
	return nest, nil
}

// loopOver builds a perfect loop nest over the given extents with the
// statement innermost; IVs are named iv0..ivN-1 (prefixed for uniqueness).
func loopOver(prefix string, extents []int64, stmt *ir.Statement) (*ir.Loop, []string) {
	ivs := make([]string, len(extents))
	for i := range extents {
		ivs[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	var root, cur *ir.Loop
	for i, n := range extents {
		l := ir.SimpleLoop(ivs[i], ir.AffConst(0), ir.AffConst(n-1))
		if cur == nil {
			root = l
		} else {
			cur.Body = append(cur.Body, l)
		}
		cur = l
	}
	cur.Body = append(cur.Body, stmt)
	return root, ivs
}

func vars(ivs []string) []ir.AffExpr {
	out := make([]ir.AffExpr, len(ivs))
	for i, iv := range ivs {
		out[i] = ir.AffVar(iv)
	}
	return out
}

func lowerMatmul(x *ir.LinalgMatmul) *ir.Nest {
	m, k := x.A.Dims[0], x.A.Dims[1]
	n := x.B.Dims[1]
	stmt := &ir.Statement{Name: "S_matmul", Flops: 2}
	root, ivs := loopOver("i", []int64{m, n, k}, stmt)
	i, j, kk := ir.AffVar(ivs[0]), ir.AffVar(ivs[1]), ir.AffVar(ivs[2])
	stmt.Accesses = []ir.Access{
		{Array: x.A, Index: []ir.AffExpr{i, kk}},
		{Array: x.B, Index: []ir.AffExpr{kk, j}},
		{Array: x.Out, Index: []ir.AffExpr{i, j}},
		{Array: x.Out, Write: true, Index: []ir.AffExpr{i, j}},
	}
	return &ir.Nest{Root: root}
}

func lowerBatchMatmul(x *ir.LinalgBatchMatmul) *ir.Nest {
	nb := len(x.A.Dims) - 2
	m, k := x.A.Dims[nb], x.A.Dims[nb+1]
	var n int64
	if x.TransB {
		n = x.B.Dims[nb]
	} else {
		n = x.B.Dims[nb+1]
	}
	extents := append(append([]int64(nil), x.A.Dims[:nb]...), m, n, k)
	stmt := &ir.Statement{Name: "S_bmm", Flops: 2}
	root, ivs := loopOver("i", extents, stmt)
	batch := vars(ivs[:nb])
	i, j, kk := ir.AffVar(ivs[nb]), ir.AffVar(ivs[nb+1]), ir.AffVar(ivs[nb+2])
	aIdx := append(append([]ir.AffExpr(nil), batch...), i, kk)
	var bIdx []ir.AffExpr
	if x.TransB {
		bIdx = append(append([]ir.AffExpr(nil), batch...), j, kk)
	} else {
		bIdx = append(append([]ir.AffExpr(nil), batch...), kk, j)
	}
	oIdx := append(append([]ir.AffExpr(nil), batch...), i, j)
	stmt.Accesses = []ir.Access{
		{Array: x.A, Index: aIdx},
		{Array: x.B, Index: bIdx},
		{Array: x.Out, Index: oIdx},
		{Array: x.Out, Write: true, Index: oIdx},
	}
	return &ir.Nest{Root: root}
}

func lowerConv2D(x *ir.LinalgConv2D) *ir.Nest {
	n, c := x.Input.Dims[0], x.Input.Dims[1]
	f, kh, kw := x.Filter.Dims[0], x.Filter.Dims[2], x.Filter.Dims[3]
	oh, ow := x.Out.Dims[2], x.Out.Dims[3]
	stmt := &ir.Statement{Name: "S_conv", Flops: 2}
	root, ivs := loopOver("c", []int64{n, f, oh, ow, c, kh, kw}, stmt)
	vN, vF, vOH, vOW := ir.AffVar(ivs[0]), ir.AffVar(ivs[1]), ir.AffVar(ivs[2]), ir.AffVar(ivs[3])
	vC, vKH, vKW := ir.AffVar(ivs[4]), ir.AffVar(ivs[5]), ir.AffVar(ivs[6])
	inH := vOH.Scale(x.StrideH).Add(vKH)
	inW := vOW.Scale(x.StrideW).Add(vKW)
	outIdx := []ir.AffExpr{vN, vF, vOH, vOW}
	stmt.Accesses = []ir.Access{
		{Array: x.Input, Index: []ir.AffExpr{vN, vC, inH, inW}},
		{Array: x.Filter, Index: []ir.AffExpr{vF, vC, vKH, vKW}},
		{Array: x.Out, Index: outIdx},
		{Array: x.Out, Write: true, Index: outIdx},
	}
	return &ir.Nest{Root: root}
}

// lowerElemwise covers unary (b == nil) and binary element-wise ops.
func lowerElemwise(a, out, b *ir.Array, broadcastB bool, flops int64, name string) *ir.Nest {
	stmt := &ir.Statement{Name: "S_" + name, Flops: flops}
	root, ivs := loopOver("e", a.Dims, stmt)
	idx := vars(ivs)
	accs := []ir.Access{{Array: a, Index: idx}}
	if b != nil {
		bIdx := idx
		if broadcastB {
			bIdx = idx[:len(idx)-1]
		}
		accs = append(accs, ir.Access{Array: b, Index: bIdx})
	}
	accs = append(accs, ir.Access{Array: out, Write: true, Index: idx})
	stmt.Accesses = accs
	return &ir.Nest{Root: root}
}

func lowerRowReduce(x *ir.LinalgRowReduce) *ir.Nest {
	stmt := &ir.Statement{Name: "S_reduce_" + x.Kind.String(), Flops: 1}
	root, ivs := loopOver("r", x.In.Dims, stmt)
	idx := vars(ivs)
	outIdx := idx[:len(idx)-1]
	stmt.Accesses = []ir.Access{
		{Array: x.In, Index: idx},
		{Array: x.Out, Index: outIdx},
		{Array: x.Out, Write: true, Index: outIdx},
	}
	return &ir.Nest{Root: root}
}

func lowerFill(x *ir.LinalgFill) *ir.Nest {
	stmt := &ir.Statement{Name: "S_fill", Flops: 0}
	root, ivs := loopOver("f", x.Out.Dims, stmt)
	stmt.Accesses = []ir.Access{{Array: x.Out, Write: true, Index: vars(ivs)}}
	return &ir.Nest{Root: root}
}
