package lower

import (
	"testing"

	"polyufc/internal/ir"
)

func TestTorchMatmulLowering(t *testing.T) {
	A := ir.NewArray("A", 4, 16, 32)
	B := ir.NewArray("B", 4, 32, 8)
	C := ir.NewArray("C", 4, 16, 8)
	mod, f := ir.NewModule("mm")
	f.Ops = []ir.Op{ir.NewTorchMatMul(A, B, C)}
	if err := TorchToLinalg(mod); err != nil {
		t.Fatal(err)
	}
	if len(f.Ops) != 1 {
		t.Fatalf("ops = %d", len(f.Ops))
	}
	lm, ok := f.Ops[0].(*ir.LinalgMatmul)
	if !ok {
		t.Fatalf("op = %T", f.Ops[0])
	}
	if lm.Origin() != "torch.matmul" {
		t.Fatalf("origin = %q", lm.Origin())
	}
	if err := LinalgToAffine(mod); err != nil {
		t.Fatal(err)
	}
	nest, ok := f.Ops[0].(*ir.Nest)
	if !ok {
		t.Fatalf("op = %T", f.Ops[0])
	}
	fl, err := nest.Flops()
	if err != nil || fl != 2*16*32*8 {
		t.Fatalf("flops = %d (%v)", fl, err)
	}
}

func TestSDPALoweringShape(t *testing.T) {
	// BERT shape from Tab. II: 2 x 12 x 128 x 64.
	b, h, s, d := int64(2), int64(12), int64(128), int64(64)
	es := int64(4)
	Q := ir.NewArray("Q", es, b, h, s, d)
	K := ir.NewArray("K", es, b, h, s, d)
	V := ir.NewArray("V", es, b, h, s, d)
	O := ir.NewArray("O", es, b, h, s, d)
	mod, f := ir.NewModule("sdpa")
	f.Ops = []ir.Op{ir.NewTorchSDPA(Q, K, V, O)}
	if err := TorchToLinalg(mod); err != nil {
		t.Fatal(err)
	}
	// Fig. 5 structure: matmul, 7 middle ops, matmul.
	if len(f.Ops) != 9 {
		t.Fatalf("sdpa lowered to %d linalg ops, want 9", len(f.Ops))
	}
	if _, ok := f.Ops[0].(*ir.LinalgBatchMatmul); !ok {
		t.Fatalf("first op = %T, want batch matmul", f.Ops[0])
	}
	if _, ok := f.Ops[8].(*ir.LinalgBatchMatmul); !ok {
		t.Fatalf("last op = %T, want batch matmul", f.Ops[8])
	}
	for i := 1; i < 8; i++ {
		if _, ok := f.Ops[i].(*ir.LinalgBatchMatmul); ok {
			t.Fatalf("middle op %d is a matmul", i)
		}
		if f.Ops[i].Origin() == "" {
			t.Fatalf("middle op %d has no origin", i)
		}
	}
	if err := LinalgToAffine(mod); err != nil {
		t.Fatal(err)
	}
	if len(f.Ops) != 9 {
		t.Fatalf("affine ops = %d", len(f.Ops))
	}
	// First matmul flops: 2 * B*H*S*S*D.
	nest := f.Ops[0].(*ir.Nest)
	fl, err := nest.Flops()
	if err != nil || fl != 2*b*h*s*s*d {
		t.Fatalf("QK^T flops = %d (%v), want %d", fl, err, 2*b*h*s*s*d)
	}
}

func TestSoftmaxLowering(t *testing.T) {
	in := ir.NewArray("X", 4, 8, 16)
	out := ir.NewArray("Y", 4, 8, 16)
	mod, f := ir.NewModule("sm")
	f.Ops = []ir.Op{ir.NewTorchSoftmax(in, out)}
	if err := TorchToLinalg(mod); err != nil {
		t.Fatal(err)
	}
	if len(f.Ops) != 5 {
		t.Fatalf("softmax lowered to %d ops, want 5", len(f.Ops))
	}
	// Reduction outputs must drop the last dim.
	red := f.Ops[0].(*ir.LinalgRowReduce)
	if len(red.Out.Dims) != 1 || red.Out.Dims[0] != 8 {
		t.Fatalf("rowmax shape = %v", red.Out.Dims)
	}
}

func TestConv2DLowering(t *testing.T) {
	// AlexNet first layer: 1x3x224x224, filter 64x3x11x11, stride 4.
	in := ir.NewArray("in", 4, 1, 3, 224, 224)
	flt := ir.NewArray("flt", 4, 64, 3, 11, 11)
	oh := (int64(224)-11)/4 + 1
	out := ir.NewArray("out", 4, 1, 64, oh, oh)
	mod, f := ir.NewModule("conv")
	f.Ops = []ir.Op{ir.NewTorchConv2D(in, flt, out, 4, 4)}
	if err := TorchToLinalg(mod); err != nil {
		t.Fatal(err)
	}
	if err := LinalgToAffine(mod); err != nil {
		t.Fatal(err)
	}
	nest := f.Ops[0].(*ir.Nest)
	fl, err := nest.Flops()
	want := 2 * int64(1) * 64 * oh * oh * 3 * 11 * 11
	if err != nil || fl != want {
		t.Fatalf("conv flops = %d (%v), want %d", fl, err, want)
	}
	// 7-deep loop nest.
	depth := 0
	nest.WalkLoops(func(_ *ir.Loop, d int) {
		if d+1 > depth {
			depth = d + 1
		}
	})
	if depth != 7 {
		t.Fatalf("conv loop depth = %d, want 7", depth)
	}
}

func TestBroadcastBinaryLowering(t *testing.T) {
	a := ir.NewArray("a", 4, 4, 6)
	bArr := ir.NewArray("b", 4, 4)
	out := ir.NewArray("o", 4, 4, 6)
	op := ir.NewLinalgElemBinary(ir.BinDiv, a, bArr, out, true)
	nest, err := LowerLinalgOp(op, "t")
	if err != nil {
		t.Fatal(err)
	}
	sts := nest.Statements()
	if len(sts) != 1 {
		t.Fatalf("statements = %d", len(sts))
	}
	var bAccess *ir.Access
	for i := range sts[0].Stmt.Accesses {
		acc := &sts[0].Stmt.Accesses[i]
		if acc.Array == bArr {
			bAccess = acc
		}
	}
	if bAccess == nil || len(bAccess.Index) != 1 {
		t.Fatalf("broadcast access index = %+v", bAccess)
	}
}

func TestCapsPassThroughLowering(t *testing.T) {
	A := ir.NewArray("A", 4, 4, 4)
	B := ir.NewArray("B", 4, 4, 4)
	C := ir.NewArray("C", 4, 4, 4)
	mod, f := ir.NewModule("caps")
	f.Ops = []ir.Op{
		&ir.SetUncoreCap{GHz: 1.5},
		ir.NewTorchMatMul(A, B, C),
	}
	if err := TorchToLinalg(mod); err != nil {
		t.Fatal(err)
	}
	if err := LinalgToAffine(mod); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Ops[0].(*ir.SetUncoreCap); !ok {
		t.Fatalf("cap not preserved: %T", f.Ops[0])
	}
}

func TestBatchMatmulTransB(t *testing.T) {
	// Q[2,3,4] x K^T where K[2,5,4] -> scores[2,3,5].
	q := ir.NewArray("q", 4, 2, 3, 4)
	k := ir.NewArray("k", 4, 2, 5, 4)
	s := ir.NewArray("s", 4, 2, 3, 5)
	op := ir.NewLinalgBatchMatmul(q, k, s, true)
	nest, err := LowerLinalgOp(op, "t")
	if err != nil {
		t.Fatal(err)
	}
	fl, err := nest.Flops()
	if err != nil || fl != 2*2*3*5*4 {
		t.Fatalf("flops = %d (%v)", fl, err)
	}
}
