// Package lower implements the dialect lowerings of the PolyUFC flow:
// torch -> linalg (operator decomposition, the role torch-mlir plays in the
// paper) and linalg -> affine (structured ops to affine loop nests, the
// role of the MLIR linalg-to-affine-loops conversion).
package lower

import (
	"fmt"
	"math"

	"polyufc/internal/ir"
)

// TorchToLinalg lowers every torch op in the module to linalg ops,
// recording provenance in each op's Origin. Non-torch ops pass through.
func TorchToLinalg(m *ir.Module) error {
	for _, f := range m.Funcs {
		var out []ir.Op
		for _, op := range f.Ops {
			lowered, err := lowerTorchOp(op)
			if err != nil {
				return err
			}
			out = append(out, lowered...)
		}
		f.Ops = out
	}
	return nil
}

// TorchToLinalgPass wraps TorchToLinalg as a pass.
func TorchToLinalgPass() ir.Pass {
	return ir.PassFunc{PassName: "lower-torch-to-linalg", Fn: TorchToLinalg}
}

func lowerTorchOp(op ir.Op) ([]ir.Op, error) {
	switch x := op.(type) {
	case *ir.TorchMatMul:
		l := ir.NewLinalgMatmul(x.A, x.B, x.Out)
		l.SetOrigin(x.OpName())
		return []ir.Op{l}, nil
	case *ir.TorchConv2D:
		l := ir.NewLinalgConv2D(x.Input, x.Filter, x.Out, x.StrideH, x.StrideW)
		l.SetOrigin(x.OpName())
		return []ir.Op{l}, nil
	case *ir.TorchRelu:
		l := ir.NewLinalgElemUnary(ir.UnaryRelu, x.In, x.Out, 0)
		l.SetOrigin(x.OpName())
		return []ir.Op{l}, nil
	case *ir.TorchAdd:
		l := ir.NewLinalgElemBinary(ir.BinAdd, x.A, x.B, x.Out, false)
		l.SetOrigin(x.OpName())
		return []ir.Op{l}, nil
	case *ir.TorchSoftmax:
		return lowerSoftmax(x.In, x.Out, x.OpName()), nil
	case *ir.TorchSDPA:
		return lowerSDPA(x)
	case *ir.SetUncoreCap:
		return []ir.Op{op}, nil
	default:
		if op.Dialect() == ir.DialectTorch {
			return nil, fmt.Errorf("lower: no lowering for %s", op.OpName())
		}
		return []ir.Op{op}, nil
	}
}

// lowerSoftmax decomposes softmax along the last dimension into the
// numerically stable max/sub/exp/sum/div sequence torch-mlir emits.
func lowerSoftmax(in, out *ir.Array, origin string) []ir.Op {
	redDims := in.Dims[:len(in.Dims)-1]
	rowMax := ir.NewArray(in.Name+"_rmax", in.ElemSize, redDims...)
	shifted := ir.NewArray(in.Name+"_shift", in.ElemSize, in.Dims...)
	expd := ir.NewArray(in.Name+"_exp", in.ElemSize, in.Dims...)
	rowSum := ir.NewArray(in.Name+"_rsum", in.ElemSize, redDims...)
	ops := []ir.Op{
		ir.NewLinalgRowReduce(ir.ReduceMax, in, rowMax),
		ir.NewLinalgElemBinary(ir.BinSub, in, rowMax, shifted, true),
		ir.NewLinalgElemUnary(ir.UnaryExp, shifted, expd, 0),
		ir.NewLinalgRowReduce(ir.ReduceSum, expd, rowSum),
		ir.NewLinalgElemBinary(ir.BinDiv, expd, rowSum, out, true),
	}
	for _, op := range ops {
		setOrigin(op, origin)
	}
	return ops
}

// lowerSDPA decomposes scaled dot-product attention into the sequence
// the paper's Fig. 5 studies: a compute-bound QK^T matmul, a bandwidth-
// bound middle region of seven element-wise/reduction ops, and a final
// compute-bound attention-times-V matmul.
func lowerSDPA(x *ir.TorchSDPA) ([]ir.Op, error) {
	d := x.Q.Dims
	if len(d) != 4 {
		return nil, fmt.Errorf("lower: sdpa expects [B,H,S,D] shapes, got %v", d)
	}
	b, h, s, dk := d[0], d[1], d[2], d[3]
	es := x.Q.ElemSize
	scores := ir.NewArray(x.Out.Name+"_scores", es, b, h, s, s)
	scaled := ir.NewArray(x.Out.Name+"_scaled", es, b, h, s, s)
	probs := ir.NewArray(x.Out.Name+"_probs", es, b, h, s, s)
	attn := ir.NewArray(x.Out.Name+"_attn", es, b, h, s, s)

	var ops []ir.Op
	// QK^T: K is [B,H,S,D], read transposed on the last two dims.
	ops = append(ops, ir.NewLinalgBatchMatmul(x.Q, x.K, scores, true))
	// Middle region (7 ops): scale, then the 5-op softmax, then a copy
	// materializing the attention probabilities (as torch-mlir emits).
	ops = append(ops, ir.NewLinalgElemUnary(ir.UnaryScale, scores, scaled, 1/math.Sqrt(float64(dk))))
	ops = append(ops, lowerSoftmax(scaled, probs, "torch.sdpa")...)
	ops = append(ops, ir.NewLinalgElemUnary(ir.UnaryCopy, probs, attn, 0))
	// Attention-weighted values.
	ops = append(ops, ir.NewLinalgBatchMatmul(attn, x.V, x.Out, false))
	for _, op := range ops {
		setOrigin(op, x.OpName())
	}
	return ops, nil
}

// setOrigin stamps provenance on any linalg op that supports it.
func setOrigin(op ir.Op, origin string) {
	type originSetter interface{ SetOrigin(string) }
	if s, ok := op.(originSetter); ok {
		s.SetOrigin(origin)
	}
}
