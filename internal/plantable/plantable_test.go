package plantable

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
)

// wideUncorePath is the fractional-grid (0.05 GHz step) backend the
// regression tests sweep.
const wideUncorePath = "../../platforms/wide-uncore.json"

var (
	targetMu    sync.Mutex
	targetCache = map[string]*roofline.Target{}
	tableCache  = map[string]*Table{}
	wideOnce    sync.Once
	wideErr     error
)

// registerWide loads the wide-uncore description into the registry once.
func registerWide(t testing.TB) {
	t.Helper()
	wideOnce.Do(func() {
		_, wideErr = platform.LoadFile(wideUncorePath)
	})
	if wideErr != nil {
		t.Fatalf("load %s: %v", wideUncorePath, wideErr)
	}
}

// testTarget resolves (and caches) a calibrated target by registry name.
func testTarget(t testing.TB, name string) *roofline.Target {
	t.Helper()
	if strings.EqualFold(name, "wide-uncore") {
		registerWide(t)
	}
	targetMu.Lock()
	defer targetMu.Unlock()
	if tg, ok := targetCache[name]; ok {
		return tg
	}
	tg, err := roofline.ResolveName(name)
	if err != nil {
		t.Fatalf("resolve %s: %v", name, err)
	}
	targetCache[name] = tg
	return tg
}

// testTable builds (and caches) the default-options plan table for a
// backend — sweeps are deterministic, so every test may share one.
func testTable(t testing.TB, name string) *Table {
	t.Helper()
	tg := testTarget(t, name)
	targetMu.Lock()
	defer targetMu.Unlock()
	if tb, ok := tableCache[name]; ok {
		return tb
	}
	tb, err := Build(nil, tg, BuildOptions{})
	if err != nil {
		t.Fatalf("build table for %s: %v", name, err)
	}
	tableCache[name] = tb
	return tb
}

// TestTableRoundTrip proves the serialized form is lossless: marshal,
// parse, deep-equal.
func TestTableRoundTrip(t *testing.T) {
	tb := testTable(t, "bdw")
	data, err := tb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("parse own marshal: %v", err)
	}
	if !reflect.DeepEqual(tb, back) {
		t.Fatal("table did not survive a marshal/parse round trip")
	}
}

// TestSaveLoad exercises the atomic file persistence.
func TestSaveLoad(t *testing.T) {
	tb := testTable(t, "bdw")
	path := t.TempDir() + "/bdw.plan.json"
	if err := tb.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb, back) {
		t.Fatal("table did not survive a save/load round trip")
	}
}

// TestParseRejectsInvalid drives Parse with structurally broken inputs:
// every one must error (never panic, never a half-loaded table).
func TestParseRejectsInvalid(t *testing.T) {
	valid, err := testTable(t, "bdw").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Table)) []byte {
		tb, err := Parse(valid)
		if err != nil {
			t.Fatal(err)
		}
		f(tb)
		data, err := tb.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"empty":          nil,
		"not json":       []byte("not a table"),
		"truncated":      valid[:len(valid)/2],
		"unknown field":  []byte(`{"schema":1,"surprise":true}`),
		"old schema":     mut(func(tb *Table) { tb.Schema = 0 }),
		"future schema":  mut(func(tb *Table) { tb.Schema = SchemaVersion + 1 }),
		"no backend":     mut(func(tb *Table) { tb.Backend = "" }),
		"no hashes":      mut(func(tb *Table) { tb.BackendHash, tb.CalHash = "", "" }),
		"bad objective":  mut(func(tb *Table) { tb.Objective = "fastest" }),
		"bad epsilon":    mut(func(tb *Table) { tb.Epsilon = 0 }),
		"bad grid":       mut(func(tb *Table) { tb.CapStepGHz = -0.1 }),
		"axis disorder":  mut(func(tb *Table) { tb.OIAxis[0], tb.OIAxis[1] = tb.OIAxis[1], tb.OIAxis[0] }),
		"negative mem":   mut(func(tb *Table) { tb.MemAxis[0] = -1 }),
		"index range":    mut(func(tb *Table) { tb.CB[0][0] = tb.GridSize() }),
		"negative index": mut(func(tb *Table) { tb.BB[0][0] = -1 }),
		"ragged rows":    mut(func(tb *Table) { tb.CB[0] = tb.CB[0][:1] }),
		"short surface":  mut(func(tb *Table) { tb.BB = tb.BB[:1] }),
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: Parse accepted invalid input", name)
		}
	}
}

// TestStaleness pins the invalidation contract: a table answers only for
// the exact backend description and calibration it was swept against,
// and every mismatch surfaces as ErrStale — never silent reuse.
func TestStaleness(t *testing.T) {
	registerWide(t)
	tg := testTarget(t, "wide-uncore")
	tb := testTable(t, "wide-uncore")
	if err := tb.Matches(tg); err != nil {
		t.Fatalf("fresh table reported stale: %v", err)
	}

	t.Run("recalibrated constants", func(t *testing.T) {
		consts := *tg.Constants
		consts.TFpu *= 1.01 // a re-fit moved the compute roof
		stale := &roofline.Target{Backend: tg.Backend, Platform: tg.Platform, Constants: &consts}
		err := tb.Matches(stale)
		if !errors.Is(err, ErrStale) {
			t.Fatalf("got %v, want ErrStale", err)
		}
	})

	t.Run("edited backend JSON", func(t *testing.T) {
		// The operator edits the description file (here: a faster cap
		// driver). The edited backend hashes differently, so the table
		// swept against the old description must be rejected.
		b := *tg.Backend
		b.CapLatencySec /= 2
		data, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		edited, err := platform.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		if edited.Hash() == tg.Backend.Hash() {
			t.Fatal("edit did not change the description hash")
		}
		editedTarget, err := roofline.Resolve(edited)
		if err != nil {
			t.Fatal(err)
		}
		err = tb.Matches(editedTarget)
		if !errors.Is(err, ErrStale) {
			t.Fatalf("got %v, want ErrStale after editing the backend JSON", err)
		}
	})

	t.Run("wrong backend", func(t *testing.T) {
		err := tb.Matches(testTarget(t, "bdw"))
		if !errors.Is(err, ErrStale) {
			t.Fatalf("got %v, want ErrStale for a different backend", err)
		}
	})

	t.Run("set counts staleness", func(t *testing.T) {
		set := NewSet()
		if err := set.Add(tb); err != nil {
			t.Fatal(err)
		}
		consts := *tg.Constants
		consts.MissLatB *= 1.5
		stale := &roofline.Target{Backend: tg.Backend, Platform: tg.Platform, Constants: &consts}
		if got := set.For(stale, search.DefaultOptions(), ""); got != nil {
			t.Fatal("Set.For served a stale table")
		}
		if st := set.Stats(); st.Stale != 1 {
			t.Fatalf("Stale counter = %d, want 1", st.Stale)
		}
	})
}

// TestMatchesOptions: a table answers only its own search configuration;
// other objectives/epsilons are a fallback, not staleness.
func TestMatchesOptions(t *testing.T) {
	tb := testTable(t, "bdw")
	if !tb.MatchesOptions(search.DefaultOptions()) {
		t.Fatal("table rejects the options it was built with")
	}
	other := search.DefaultOptions()
	other.Objective = search.ObjectiveEnergy
	if tb.MatchesOptions(other) {
		t.Fatal("table claims to answer a different objective")
	}
	set := NewSet()
	if err := set.Add(tb); err != nil {
		t.Fatal(err)
	}
	if got := set.For(testTarget(t, "bdw"), other, ""); got != nil {
		t.Fatal("Set.For served a table for the wrong objective")
	}
	if st := set.Stats(); st.Stale != 0 {
		t.Fatalf("options mismatch counted as staleness: %+v", st)
	}
}

// TestGridConsistency: the table's regenerated cap grid is exactly the
// platform's — same size, same points, bit-equal floats.
func TestGridConsistency(t *testing.T) {
	for _, name := range []string{"bdw", "rpl", "wide-uncore"} {
		tg := testTarget(t, name)
		tb := testTable(t, name)
		steps := tg.Platform.UncoreSteps()
		if tb.GridSize() != len(steps) {
			t.Fatalf("%s: table grid has %d points, platform has %d", name, tb.GridSize(), len(steps))
		}
		for i, want := range steps {
			if got := tb.GridFreq(i); got != want {
				t.Fatalf("%s: grid point %d: table %v != platform %v", name, i, got, want)
			}
		}
	}
}

// TestFractionalGridRoundTrip is the fractional-step regression: a
// 0.05 GHz backend's table must round-trip every stored cap through JSON
// onto exact grid points — no float-format drift, because the format
// stores grid indices and regenerates frequencies through the anchored
// grid math.
func TestFractionalGridRoundTrip(t *testing.T) {
	tg := testTarget(t, "wide-uncore")
	if tg.Platform.CapStep != 0.05 {
		t.Fatalf("wide-uncore cap step = %v, test needs the fractional 0.05 grid", tg.Platform.CapStep)
	}
	tb := testTable(t, "wide-uncore")
	data, err := tb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	onGrid := map[float64]bool{}
	for _, f := range tg.Platform.UncoreSteps() {
		onGrid[f] = true
	}
	for _, surface := range [][][]int{back.CB, back.BB} {
		for _, row := range surface {
			for _, idx := range row {
				if f := back.GridFreq(idx); !onGrid[f] {
					t.Fatalf("deserialized cap %v (index %d) is not an exact grid point", f, idx)
				}
			}
		}
	}
}

// TestSetFingerprint: the fingerprint is stable across insertion order
// and changes when a table changes.
func TestSetFingerprint(t *testing.T) {
	a, b := testTable(t, "bdw"), testTable(t, "rpl")
	s1, s2 := NewSet(), NewSet()
	if err := s1.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := s1.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := s2.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := s2.Add(a); err != nil {
		t.Fatal(err)
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatal("fingerprint depends on insertion order")
	}
	mod, err := Parse(mustMarshal(t, a))
	if err != nil {
		t.Fatal(err)
	}
	mod.CalHash = "0123456789abcdef"
	s3 := NewSet()
	if err := s3.Add(mod); err != nil {
		t.Fatal(err)
	}
	if err := s3.Add(b); err != nil {
		t.Fatal(err)
	}
	if s3.Fingerprint() == s1.Fingerprint() {
		t.Fatal("fingerprint ignores table content")
	}
}

func mustMarshal(t *testing.T, tb *Table) []byte {
	t.Helper()
	data, err := tb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTilingAxis proves the strategy dimension of the table key: a
// pre-axis table (no tiling field) answers as pluto — for both "" and
// the explicit name — while a table built for another strategy is
// served only to requests naming that strategy.
func TestTilingAxis(t *testing.T) {
	tb := testTable(t, "bdw")
	if tb.TilingName() != "pluto" {
		t.Fatalf("default-build TilingName() = %q", tb.TilingName())
	}
	// A pre-axis artifact has no tiling field at all; it must parse and
	// answer as pluto.
	legacy := *tb
	legacy.Tiling = ""
	data, err := legacy.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"tiling"`) {
		t.Fatal("empty tiling serialized a field; pre-axis readers would reject it")
	}
	old, err := Parse(data)
	if err != nil {
		t.Fatalf("pre-axis table rejected: %v", err)
	}
	if old.TilingName() != "pluto" {
		t.Fatalf("pre-axis TilingName() = %q", old.TilingName())
	}

	tg := testTarget(t, "bdw")
	set := NewSet()
	if err := set.Add(old); err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	if set.For(tg, opts, "") == nil || set.For(tg, opts, "pluto") == nil {
		t.Fatal("pre-axis table must answer for both \"\" and \"pluto\"")
	}
	for _, other := range []string{"cacheoblivious", "latency", "auto", "pluto:size=64"} {
		if set.For(tg, opts, other) != nil {
			t.Fatalf("pluto table served a %s request", other)
		}
	}

	// A table stamped for another strategy is keyed apart from pluto's.
	co := *old
	co.Tiling = "cacheoblivious"
	if err := set.Add(&co); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("set holds %d tables; want 2 (pluto + cacheoblivious)", set.Len())
	}
	if got := set.For(tg, opts, "cacheoblivious"); got == nil || got.TilingName() != "cacheoblivious" {
		t.Fatalf("cacheoblivious lookup got %v", got)
	}
	if got := set.For(tg, opts, ""); got == nil || got.TilingName() != "pluto" {
		t.Fatal("adding a cacheoblivious table displaced the pluto one")
	}

	// A non-canonical fingerprint is rejected at validation.
	bad := *old
	bad.Tiling = "latency:probe=4" // canonical form is bare "latency"
	if err := set.Add(&bad); err == nil {
		t.Fatal("non-canonical tiling fingerprint accepted")
	}
}
