package plantable

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"polyufc/internal/model"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
)

// rhoTarget resolves (and caches) a 2-socket topology built from the
// embedded BDW description.
func rhoTarget(t testing.TB) *roofline.Target {
	t.Helper()
	targetMu.Lock()
	defer targetMu.Unlock()
	if tg, ok := targetCache["2s-plan"]; ok {
		return tg
	}
	bdw, err := platform.Lookup("BDW")
	if err != nil {
		t.Fatal(err)
	}
	sock := bdw.Topology()[0]
	b := &platform.Backend{
		Schema: platform.SchemaVersion, Name: "2S-PLAN-TEST",
		CPU: "test 2S", Released: 2026,
		Sockets:      []platform.Socket{sock, sock},
		Interconnect: &platform.Interconnect{BWGBs: 19.2, LatencyNs: 120, EnergyPJPerByte: 15},
	}
	b.Normalize()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	tg, err := roofline.Resolve(b)
	if err != nil {
		t.Fatal(err)
	}
	targetCache["2s-plan"] = tg
	return tg
}

// rhoTable builds (and caches) a small rho-extended table for the
// 2-socket target.
func rhoTable(t testing.TB) *Table {
	t.Helper()
	tg := rhoTarget(t)
	targetMu.Lock()
	defer targetMu.Unlock()
	if tb, ok := tableCache["2s-plan"]; ok {
		return tb
	}
	tb, err := Build(nil, tg, BuildOptions{
		OIPoints: 9, MemPoints: 7,
		Rhos: []float64{0.25, 0.5, 0.75, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tableCache["2s-plan"] = tb
	return tb
}

// numaModel arms the inter-socket term on a model against the target's
// declared link.
func numaModel(tg *roofline.Target, m *model.Model, rho float64) *model.Model {
	sec, jpb := tg.RemotePenalty()
	ks := m.KS
	ks.RemoteRatio = rho
	return model.NewNUMA(m.C, ks, &model.RemoteCost{SecPerByte: sec, JoulesPerByte: jpb})
}

func TestRhoTableRoundTripAndZeroPlane(t *testing.T) {
	tb := rhoTable(t)
	if len(tb.RhoAxis) < 2 || tb.RhoAxis[0] != 0 {
		t.Fatalf("rho axis %v must start at the 0 anchor", tb.RhoAxis)
	}
	// The rho = 0 plane coincides with the 2D surfaces: the remote term
	// vanishes there, so the sweeps share their cells.
	for i := range tb.OIAxis {
		for j := range tb.MemAxis {
			if tb.CBR[i][j][0] != tb.CB[i][j] || tb.BBR[i][j][0] != tb.BB[i][j] {
				t.Fatalf("rho=0 plane diverges from the 2D surface at cell (%d,%d)", i, j)
			}
		}
	}
	data, err := tb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("parse own marshal: %v", err)
	}
	if !reflect.DeepEqual(tb, back) {
		t.Fatal("rho table did not survive a marshal/parse round trip")
	}
	// Single-socket tables keep the pre-topology wire format: none of
	// the new keys appear.
	flat, err := testTable(t, "bdw").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"socket", "rho_axis", "cb_rho", "bb_rho"} {
		if bytes.Contains(flat, []byte(`"`+key+`"`)) {
			t.Fatalf("single-socket table marshal contains %q", key)
		}
	}
}

// TestRhoLookupSearchEquivalence extends the headline property to NUMA
// placements: for randomized kernels with randomized remote shares, the
// rho-extended table and live search agree within one grid step on
// >= 99% of the points the table answers.
func TestRhoLookupSearchEquivalence(t *testing.T) {
	tg := rhoTarget(t)
	tb := rhoTable(t)
	r := rand.New(rand.NewSource(7))
	models := make([]*model.Model, 300)
	for i := range models {
		models[i] = numaModel(tg, randomKernel(r, tg.Constants), r.Float64())
	}
	checkEquivalence(t, tg, tb, models, 0.3)
}

// TestRhoZeroLookupBitIdentical: a NUMA model with rho = 0 answers from
// the 2D path, identically to the plain model — the topology layer adds
// nothing to single-socket lookups.
func TestRhoZeroLookupBitIdentical(t *testing.T) {
	tg := rhoTarget(t)
	tb := rhoTable(t)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		plain := randomKernel(r, tg.Constants)
		fPlain, okPlain := tb.Lookup(plain)
		fNuma, okNuma := tb.Lookup(numaModel(tg, plain, 0))
		if okPlain != okNuma || fPlain != fNuma {
			t.Fatalf("rho=0 NUMA lookup diverged: (%g,%v) vs (%g,%v)", fPlain, okPlain, fNuma, okNuma)
		}
	}
}

// TestRhoLookupFallsBackOn2DTable: a pre-topology table must refuse NUMA
// models rather than answer while ignoring the remote coordinate.
func TestRhoLookupFallsBackOn2DTable(t *testing.T) {
	tg := rhoTarget(t)
	flat := testTable(t, "bdw")
	r := rand.New(rand.NewSource(9))
	answered := 0
	for i := 0; i < 50; i++ {
		m := randomKernel(r, testTarget(t, "bdw").Constants)
		if _, ok := flat.Lookup(m); ok {
			answered++
			if _, ok := flat.Lookup(numaModel(tg, m, 0.5)); ok {
				t.Fatal("2D table answered a rho > 0 lookup")
			}
		}
	}
	if answered == 0 {
		t.Fatal("no baseline lookups answered; the fallback check never ran")
	}
}

// TestSocketTablesAreDistinctDomains: per-socket tables register and
// resolve under their own key; a socket out of the target's range is
// stale.
func TestSocketTablesAreDistinctDomains(t *testing.T) {
	tg := rhoTarget(t)
	tb0 := rhoTable(t)
	tb1, err := Build(nil, tg, BuildOptions{OIPoints: 9, MemPoints: 7, Socket: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb1.Socket != 1 {
		t.Fatalf("socket-1 table stamped socket %d", tb1.Socket)
	}
	// Homogeneous sockets share the calibration, so both tables pin the
	// same constants hash — but they are distinct serving domains.
	if tb1.CalHash != tb0.CalHash {
		t.Fatal("homogeneous socket domains pinned different calibrations")
	}
	set := NewSet()
	if err := set.Add(tb0); err != nil {
		t.Fatal(err)
	}
	if err := set.Add(tb1); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("socket tables collided: %d loaded", set.Len())
	}
	opts := search.DefaultOptions()
	if got := set.ForSocket(tg, opts, "", 0); got != tb0 {
		t.Fatal("socket 0 resolved the wrong table")
	}
	if got := set.ForSocket(tg, opts, "", 1); got != tb1 {
		t.Fatal("socket 1 resolved the wrong table")
	}
	if got := set.ForSocket(tg, opts, "", 2); got != nil {
		t.Fatal("unswept socket 2 resolved a table")
	}
	// A socket table against a shrunken topology is stale, not misread.
	stale := *tb1
	stale.Socket = 5
	if err := stale.Matches(tg); !errors.Is(err, ErrStale) {
		t.Fatalf("out-of-range socket table: %v, want ErrStale", err)
	}
}
