// Package plantable precomputes PolyUFC-SEARCH answers into versioned,
// serializable capping-plan tables, turning the hottest serve path from
// a multi-compile bisection into a table lookup (Kerncraft-style
// ahead-of-time analytic modeling, PAPERS.md).
//
// The precomputation is sound because the bisection's answer depends
// only on a kernel's *intensive shape*, not its absolute volume: for the
// Sec. V model, t(f) = Q * (a + M(f)) where Q is the timed DRAM traffic,
// a the frequency-independent seconds per DRAM byte (compute + cache
// hits) and M(f) the hyperbolic per-byte miss service time. Scaling a
// kernel uniformly multiplies every estimate's Seconds/Joules by Q (EDP
// by Q^2) and leaves performance and bandwidth untouched, so every score
// comparison and every delta ratio the search steers by is invariant.
// The search outcome is therefore a function of exactly three values:
// the CB/BB class, phi = Flops/Q (flops per timed DRAM byte — the OI
// axis) and a (normalized here by M at the reference frequency — the
// memory-ratio axis). A table sweeps a 2D (phi x ratio) grid per class,
// densified around the backend's ridge point phi = BtDRAM where the
// characterization flips (SNIPPETS.md RooflineSpec), and answers serve
// requests by bilinear interpolation.
//
// Tables are pinned to the exact backend description hash and
// calibration-constants hash they were swept against: a table for an
// edited description or a re-fitted calibration is rejected with
// ErrStale, never silently reused. Cap frequencies are stored as grid
// *indices*, not floats, so fractional cap steps (0.05 GHz) round-trip
// through JSON onto exact grid points with no float-format drift.
package plantable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"polyufc/internal/hw"
	"polyufc/internal/model"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
)

// SchemaVersion is the plan-table format version. Files carrying a
// different "schema" value are rejected at parse time — an old table is
// rebuilt, not misread.
const SchemaVersion = 1

// maxCellSpread bounds how many grid indices the four corners of a cell
// may span before Lookup refuses to interpolate across it. A cell whose
// corners disagree by more than one step sits on a cliff of the cap
// surface (typically the ridge neighborhood); answering from it could
// miss the live bisection by the whole cliff height, so such lookups
// fall back to live search instead.
const maxCellSpread = 1

// ErrStale marks a table whose backend description or calibration no
// longer matches the target it is asked to answer for. Staleness is an
// error, never a silent fallback: the caller decides whether to rebuild.
var ErrStale = errors.New("plantable: stale table")

// Table is one backend's precomputed capping-plan surface: for each
// (class, OI, memory-ratio) cell, the uncore-grid index PolyUFC-SEARCH
// selects. Axes are ascending; CB and BB are len(OIAxis) rows of
// len(MemAxis) grid indices each.
type Table struct {
	Schema int `json:"schema"`
	// Backend names the swept backend; BackendHash pins the exact
	// description and CalHash the exact calibration constants
	// (CalibrationHash) the sweep ran against.
	Backend     string `json:"backend"`
	BackendHash string `json:"backend_hash"`
	CalHash     string `json:"calibration_hash"`
	// Objective and Epsilon pin the search configuration the table
	// answers for; requests with different options fall back to live
	// search.
	Objective string  `json:"objective"`
	Epsilon   float64 `json:"epsilon"`
	// Tiling is the tiling-strategy fingerprint (tiling.Spec.Fingerprint)
	// the table answers for. The cap surface itself depends only on the
	// intensive shape, but compilations under different strategies hand
	// the lookup differently-shaped models, so tables are an axis of the
	// serving configuration: a table serves only requests compiled under
	// its strategy. Empty means "pluto" — tables written before the
	// strategy layer existed load unchanged and keep serving the default
	// pipeline.
	Tiling string `json:"tiling,omitempty"`
	// The uncore cap grid the stored indices address, in the anchored
	// (min, max, step) form of hw.GridPoint — indices, not floats, so
	// fractional steps round-trip exactly.
	UncoreMinGHz float64 `json:"uncore_min_ghz"`
	UncoreMaxGHz float64 `json:"uncore_max_ghz"`
	CapStepGHz   float64 `json:"cap_step_ghz"`
	// OIAxis is phi = Flops per timed DRAM byte, ascending, densified
	// around the ridge point BtDRAM. MemAxis is a / M(fRef): the
	// frequency-independent per-byte time over the miss service time at
	// the top grid frequency.
	OIAxis  []float64 `json:"oi_axis"`
	MemAxis []float64 `json:"mem_axis"`
	// CB and BB hold the selected grid index per (OIAxis[i], MemAxis[j])
	// cell for compute-bound and bandwidth-bound kernels respectively.
	CB [][]int `json:"cb"`
	BB [][]int `json:"bb"`
	// Socket is the uncore-domain index the table answers for.
	// Multi-socket topologies sweep one table per socket domain (their
	// calibrations can differ); 0 — the single-socket default — keeps
	// pre-topology tables byte-identical through omitempty.
	Socket int `json:"socket,omitempty"`
	// RhoAxis extends the intensive shape with the remote-traffic-ratio
	// coordinate of topology placements: the fraction of DRAM bytes the
	// kernel serves across the inter-socket link. The remote time folds
	// into the memory ratio, but the link's per-byte energy is a genuine
	// fourth shape parameter, so rho > 0 lookups need their own swept
	// surface. Absent (with CBR/BBR) on single-socket tables.
	RhoAxis []float64 `json:"rho_axis,omitempty"`
	// CBR and BBR hold the selected grid index per (OIAxis[i],
	// MemAxis[j], RhoAxis[k]) cell; their rho = 0 plane coincides with
	// CB/BB (the remote term vanishes there).
	CBR [][][]int `json:"cb_rho,omitempty"`
	BBR [][][]int `json:"bb_rho,omitempty"`
}

// CalibrationHash is the content hash of a set of calibrated constants,
// pinning a plan table to the exact fit it was swept with (the backend
// hash alone would accept a re-fitted calibration of the same
// description). Constants marshal deterministically (fixed field order,
// shortest float representation), so the hash is stable.
func CalibrationHash(c *platform.Constants) string {
	return c.Hash()
}

// TilingName returns the tiling-strategy fingerprint the table answers
// for, with the pre-strategy default normalized: tables written before
// the tiling axis existed are pluto tables.
func (tb *Table) TilingName() string {
	if tb.Tiling == "" {
		return tiling.NamePluto
	}
	return tb.Tiling
}

// GridSize returns the number of cap-grid points the table addresses.
func (tb *Table) GridSize() int {
	return hw.GridSize(tb.UncoreMinGHz, tb.UncoreMaxGHz, tb.CapStepGHz)
}

// GridFreq returns the cap frequency of grid index i, clamped into the
// table's grid. It goes through the same anchored index math as
// hw.Platform.UncoreSteps, so a deserialized table reproduces the
// platform's grid points exactly.
func (tb *Table) GridFreq(i int) float64 {
	n := tb.GridSize()
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	return hw.GridPoint(tb.UncoreMinGHz, tb.CapStepGHz, i)
}

// Cells returns the total number of swept cells (both class surfaces).
func (tb *Table) Cells() int { return 2 * len(tb.OIAxis) * len(tb.MemAxis) }

// Validate checks structural invariants: schema, identity, a sane grid,
// strictly ascending finite axes, and index matrices of the declared
// shape with every entry on the grid. Parse enforces it so corrupt or
// hand-edited tables error instead of producing out-of-range caps.
func (tb *Table) Validate() error {
	if tb == nil {
		return fmt.Errorf("plantable: nil table")
	}
	if tb.Schema != SchemaVersion {
		return fmt.Errorf("plantable: table for %q: schema: got version %d, this build reads version %d (rebuild the table)",
			tb.Backend, tb.Schema, SchemaVersion)
	}
	if tb.Backend == "" {
		return fmt.Errorf("plantable: table: backend: must name the swept backend")
	}
	if tb.BackendHash == "" || tb.CalHash == "" {
		return fmt.Errorf("plantable: table for %q: backend_hash and calibration_hash must pin the swept target", tb.Backend)
	}
	if _, ok := search.ParseObjective(tb.Objective); !ok || tb.Objective == "" {
		return fmt.Errorf("plantable: table for %q: objective: unknown %q", tb.Backend, tb.Objective)
	}
	if !(tb.Epsilon > 0) {
		return fmt.Errorf("plantable: table for %q: epsilon: must be > 0, got %g", tb.Backend, tb.Epsilon)
	}
	if tb.Tiling != "" {
		spec, err := tiling.ParseSpec(tb.Tiling)
		if err != nil {
			return fmt.Errorf("plantable: table for %q: tiling: %w", tb.Backend, err)
		}
		if fp := spec.Fingerprint(); fp != tb.Tiling {
			return fmt.Errorf("plantable: table for %q: tiling: %q is not canonical (want %q)",
				tb.Backend, tb.Tiling, fp)
		}
	}
	if !(tb.UncoreMinGHz > 0) || tb.UncoreMaxGHz < tb.UncoreMinGHz || !(tb.CapStepGHz > 0) {
		return fmt.Errorf("plantable: table for %q: uncore grid: need 0 < min <= max and step > 0, got [%g, %g] step %g",
			tb.Backend, tb.UncoreMinGHz, tb.UncoreMaxGHz, tb.CapStepGHz)
	}
	if len(tb.OIAxis) < 2 || len(tb.MemAxis) < 2 {
		return fmt.Errorf("plantable: table for %q: axes need at least 2 points each, got %dx%d",
			tb.Backend, len(tb.OIAxis), len(tb.MemAxis))
	}
	if err := checkAxis("oi_axis", tb.OIAxis, true); err != nil {
		return fmt.Errorf("plantable: table for %q: %w", tb.Backend, err)
	}
	if err := checkAxis("mem_axis", tb.MemAxis, false); err != nil {
		return fmt.Errorf("plantable: table for %q: %w", tb.Backend, err)
	}
	n := tb.GridSize()
	for name, m := range map[string][][]int{"cb": tb.CB, "bb": tb.BB} {
		if len(m) != len(tb.OIAxis) {
			return fmt.Errorf("plantable: table for %q: %s: got %d rows, oi_axis has %d points",
				tb.Backend, name, len(m), len(tb.OIAxis))
		}
		for i, row := range m {
			if len(row) != len(tb.MemAxis) {
				return fmt.Errorf("plantable: table for %q: %s row %d: got %d entries, mem_axis has %d points",
					tb.Backend, name, i, len(row), len(tb.MemAxis))
			}
			for j, idx := range row {
				if idx < 0 || idx >= n {
					return fmt.Errorf("plantable: table for %q: %s[%d][%d]: grid index %d out of range [0, %d)",
						tb.Backend, name, i, j, idx, n)
				}
			}
		}
	}
	if tb.Socket < 0 {
		return fmt.Errorf("plantable: table for %q: socket: must be >= 0, got %d", tb.Backend, tb.Socket)
	}
	if len(tb.RhoAxis) == 0 {
		if len(tb.CBR) != 0 || len(tb.BBR) != 0 {
			return fmt.Errorf("plantable: table for %q: cb_rho/bb_rho present without a rho_axis", tb.Backend)
		}
		return nil
	}
	if len(tb.RhoAxis) < 2 {
		return fmt.Errorf("plantable: table for %q: rho_axis needs at least 2 points, got %d", tb.Backend, len(tb.RhoAxis))
	}
	if err := checkAxis("rho_axis", tb.RhoAxis, false); err != nil {
		return fmt.Errorf("plantable: table for %q: %w", tb.Backend, err)
	}
	if tb.RhoAxis[0] != 0 || tb.RhoAxis[len(tb.RhoAxis)-1] > 1 {
		return fmt.Errorf("plantable: table for %q: rho_axis must start at 0 and stay within [0, 1], got [%g, %g]",
			tb.Backend, tb.RhoAxis[0], tb.RhoAxis[len(tb.RhoAxis)-1])
	}
	for name, m := range map[string][][][]int{"cb_rho": tb.CBR, "bb_rho": tb.BBR} {
		if len(m) != len(tb.OIAxis) {
			return fmt.Errorf("plantable: table for %q: %s: got %d rows, oi_axis has %d points",
				tb.Backend, name, len(m), len(tb.OIAxis))
		}
		for i, row := range m {
			if len(row) != len(tb.MemAxis) {
				return fmt.Errorf("plantable: table for %q: %s row %d: got %d entries, mem_axis has %d points",
					tb.Backend, name, i, len(row), len(tb.MemAxis))
			}
			for j, cell := range row {
				if len(cell) != len(tb.RhoAxis) {
					return fmt.Errorf("plantable: table for %q: %s[%d][%d]: got %d entries, rho_axis has %d points",
						tb.Backend, name, i, j, len(cell), len(tb.RhoAxis))
				}
				for k, idx := range cell {
					if idx < 0 || idx >= n {
						return fmt.Errorf("plantable: table for %q: %s[%d][%d][%d]: grid index %d out of range [0, %d)",
							tb.Backend, name, i, j, k, idx, n)
					}
				}
			}
		}
	}
	return nil
}

// checkAxis verifies an axis is finite, strictly ascending and (when
// positive is set) strictly positive.
func checkAxis(name string, axis []float64, positive bool) error {
	for i, v := range axis {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%s[%d]: must be finite, got %g", name, i, v)
		}
		if positive && !(v > 0) {
			return fmt.Errorf("%s[%d]: must be > 0, got %g", name, i, v)
		}
		if !positive && v < 0 {
			return fmt.Errorf("%s[%d]: must be >= 0, got %g", name, i, v)
		}
		if i > 0 && v <= axis[i-1] {
			return fmt.Errorf("%s[%d]: must be strictly ascending, got %g after %g", name, i, v, axis[i-1])
		}
	}
	return nil
}

// Matches reports whether the table was swept against t's exact backend
// description and calibration. A mismatch wraps ErrStale — the table
// must be rebuilt, never silently served.
func (tb *Table) Matches(t *roofline.Target) error {
	if t == nil || t.Backend == nil || t.Constants == nil {
		return fmt.Errorf("plantable: table for %q: target carries no backend description", tb.Backend)
	}
	if tb.Backend != t.Backend.Name {
		return fmt.Errorf("%w: table is for backend %q, not %q", ErrStale, tb.Backend, t.Backend.Name)
	}
	if h := t.Backend.Hash(); tb.BackendHash != h {
		return fmt.Errorf("%w: table for %q was swept against description %s, but the current description is %s (rebuild the table)",
			ErrStale, tb.Backend, tb.BackendHash, h)
	}
	if tb.Socket >= t.NumSockets() {
		return fmt.Errorf("%w: table for %q answers socket %d, but the description has %d sockets",
			ErrStale, tb.Backend, tb.Socket, t.NumSockets())
	}
	// The calibration pin is per socket domain: socket tables check the
	// fit of their own socket (identical to Constants on single-socket
	// and homogeneous targets).
	if h := CalibrationHash(t.SocketConstants(tb.Socket)); tb.CalHash != h {
		return fmt.Errorf("%w: table for %q was swept against calibration %s, but the current calibration is %s (rebuild the table)",
			ErrStale, tb.Backend, tb.CalHash, h)
	}
	return nil
}

// MatchesOptions reports whether the table answers for this search
// configuration (objective + epsilon). A mismatch is not staleness —
// the request simply falls back to live search.
func (tb *Table) MatchesOptions(opts search.Options) bool {
	return tb.Objective == opts.Objective.String() && tb.Epsilon == opts.Epsilon
}

// Marshal renders the table as indented, field-stable JSON.
func (tb *Table) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(tb, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("plantable: marshal table %q: %w", tb.Backend, err)
	}
	return append(out, '\n'), nil
}

// Parse decodes one plan table, rejecting unknown fields (a typo or a
// future-format file errors instead of silently loading zeros) and
// validating every structural invariant. Corrupt, truncated or
// old-schema inputs return errors — never panic, never a half-loaded
// table.
func Parse(data []byte) (*Table, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tb Table
	if err := dec.Decode(&tb); err != nil {
		return nil, fmt.Errorf("plantable: parse table: %w", err)
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	return &tb, nil
}

// Save writes the table atomically (temp file + rename, the journal's
// persistence discipline): a crash mid-write leaves either no table or
// the previous complete one, never a torn file.
func (tb *Table) Save(path string) error {
	data, err := tb.Marshal()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plantable-*.json")
	if err != nil {
		return fmt.Errorf("plantable: save table: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("plantable: save table: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("plantable: save table: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plantable: save table: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plantable: save table: %w", err)
	}
	return nil
}

// Load reads and validates a plan table file.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plantable: load table: %w", err)
	}
	tb, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return tb, nil
}

// Shape is the intensive parameterization of one kernel model: the only
// three values the search outcome depends on (see the package comment).
type Shape struct {
	Class roofline.Class
	// Phi is Flops per timed DRAM byte (the OI axis).
	Phi float64
	// Ratio is the frequency-independent per-byte time over M(fRef)
	// (the memory axis).
	Ratio float64
}

// refFreq returns the table's reference frequency: the top grid point
// (not UncoreMax, which fractional steps may leave off the grid).
func (tb *Table) refFreq() float64 {
	return tb.GridFreq(tb.GridSize() - 1)
}

// Decompose reduces a fitted kernel model to its intensive shape against
// a reference frequency. It reports false for kernels outside the
// model's tabulable family (no DRAM traffic — their time is
// frequency-independent and the search degenerates).
func Decompose(m *model.Model, fRef float64) (Shape, bool) {
	q := m.KS.QDRAMTime
	if q == 0 {
		q = m.KS.QDRAM
	}
	if q <= 0 || fRef <= 0 {
		return Shape{}, false
	}
	mRef := m.C.MissLat(fRef)
	if !(mRef > 0) || math.IsInf(mRef, 0) || math.IsNaN(mRef) {
		return Shape{}, false
	}
	// t(fRef) = Q*(a + M(fRef)): recover a from one model evaluation
	// instead of re-deriving Eqns. 3-4, so the decomposition can never
	// drift from the model.
	a := m.At(fRef).Seconds/float64(q) - mRef
	// NUMA models fold the remote traffic's frequency-independent
	// per-byte time into the evaluation; subtract it so the shape stays
	// the local one and rho remains an independent coordinate.
	if rho := remoteShare(m); rho > 0 {
		a -= rho * m.Remote.SecPerByte
	}
	if a < 0 {
		a = 0 // float fuzz on pure-streaming kernels
	}
	phi := float64(m.KS.Flops) / float64(q)
	if math.IsNaN(phi) || math.IsInf(phi, 0) || phi < 0 {
		return Shape{}, false
	}
	return Shape{Class: m.Class(), Phi: phi, Ratio: a / mRef}, true
}

// remoteShare returns the effective remote-traffic ratio of a model: 0
// unless the inter-socket term is armed, clamped into [0, 1] like the
// model itself clamps it.
func remoteShare(m *model.Model) float64 {
	if m.Remote == nil || !(m.KS.RemoteRatio > 0) {
		return 0
	}
	return math.Min(m.KS.RemoteRatio, 1)
}

// surface returns the index matrix answering for a class.
func (tb *Table) surface(cls roofline.Class) [][]int {
	if cls == roofline.ComputeBound {
		return tb.CB
	}
	return tb.BB
}

// surfaceRho returns the rho-extended index tensor for a class.
func (tb *Table) surfaceRho(cls roofline.Class) [][][]int {
	if cls == roofline.ComputeBound {
		return tb.CBR
	}
	return tb.BBR
}

// locate finds the cell [lo, lo+1] bracketing v on an ascending axis and
// the interpolation weight toward the upper edge. Outside the axis range
// it reports false.
func locate(axis []float64, v float64) (lo int, w float64, ok bool) {
	if math.IsNaN(v) || v < axis[0] || v > axis[len(axis)-1] {
		return 0, 0, false
	}
	hi := sort.SearchFloat64s(axis, v)
	if hi == 0 {
		return 0, 0, true
	}
	if hi == len(axis) {
		return len(axis) - 2, 1, true
	}
	lo = hi - 1
	span := axis[hi] - axis[lo]
	if span <= 0 {
		return lo, 0, true
	}
	return lo, (v - axis[lo]) / span, true
}

// Lookup answers the capping question for a fitted kernel model from the
// table: the selected cap frequency (always an exact grid point) and
// whether the table could answer. It reports false — the caller falls
// back to live search — when the kernel decomposes outside the tabulated
// axes, has no DRAM traffic, or lands in a cell whose corners span more
// than maxCellSpread grid steps (a cliff of the cap surface, where
// interpolation could not honor the one-grid-step equivalence bound).
func (tb *Table) Lookup(m *model.Model) (float64, bool) {
	sh, ok := Decompose(m, tb.refFreq())
	if !ok {
		return 0, false
	}
	i, wi, ok := locate(tb.OIAxis, sh.Phi)
	if !ok {
		return 0, false
	}
	j, wj, ok := locate(tb.MemAxis, sh.Ratio)
	if !ok {
		return 0, false
	}
	if rho := remoteShare(m); rho > 0 {
		// NUMA placements answer from the rho-extended surface when the
		// table carries one; a pre-topology table falls back to live
		// search rather than ignoring the remote coordinate.
		if len(tb.RhoAxis) == 0 {
			return 0, false
		}
		k, wk, ok := locate(tb.RhoAxis, rho)
		if !ok {
			return 0, false
		}
		s := tb.surfaceRho(sh.Class)
		corners := [8]int{
			s[i][j][k], s[i][j][k+1],
			s[i][j+1][k], s[i][j+1][k+1],
			s[i+1][j][k], s[i+1][j][k+1],
			s[i+1][j+1][k], s[i+1][j+1][k+1],
		}
		lo, hi := corners[0], corners[0]
		for _, c := range corners[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > maxCellSpread {
			return 0, false
		}
		// Trilinear interpolation in index space, then snap to the grid.
		bilin := func(c00, c01, c10, c11 int) float64 {
			return (1-wi)*((1-wj)*float64(c00)+wj*float64(c01)) +
				wi*((1-wj)*float64(c10)+wj*float64(c11))
		}
		v := (1-wk)*bilin(corners[0], corners[2], corners[4], corners[6]) +
			wk*bilin(corners[1], corners[3], corners[5], corners[7])
		return tb.GridFreq(int(math.Round(v))), true
	}
	s := tb.surface(sh.Class)
	c00 := s[i][j]
	c01 := s[i][j+1]
	c10 := s[i+1][j]
	c11 := s[i+1][j+1]
	lo, hi := c00, c00
	for _, c := range [...]int{c01, c10, c11} {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > maxCellSpread {
		return 0, false
	}
	// Bilinear interpolation in index space, then snap to the grid: the
	// answer is always one of the cell's corner indices (or between two
	// adjacent ones), so the stored caps bound the error.
	v := (1-wi)*((1-wj)*float64(c00)+wj*float64(c01)) +
		wi*((1-wj)*float64(c10)+wj*float64(c11))
	return tb.GridFreq(int(math.Round(v))), true
}
