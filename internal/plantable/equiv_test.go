package plantable

import (
	"math"
	"math/rand"
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/model"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
)

// equivBackends are the equivalence-suite targets: both paper machines
// plus the fractional-grid description file.
var equivBackends = []string{"bdw", "rpl", "wide-uncore"}

// randomKernel draws one randomized kernel model against a calibrated
// backend: timed DRAM volume across five orders of magnitude (the "size"
// axis), flop intensity across the whole tabulated OI range, an
// arbitrary cache-hit chain, and serial or fully-parallel threading. It
// is deliberately NOT built through SyntheticModel — the property must
// hold for arbitrary KernelStats, not just the sweep's witnesses.
func randomKernel(r *rand.Rand, c *platform.Constants) *model.Model {
	logu := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	q := int64(logu(1e5, 1e10))
	phi := logu(c.BtDRAM*3e-4, c.BtDRAM*3e3)
	ks := model.KernelStats{
		QDRAM:     q,
		QDRAMTime: q,
		Flops:     int64(math.Round(phi * float64(q))),
		// The classification axis is independent of phi in general
		// kernels (OI counts thread-shared traffic); draw it around the
		// ridge so both surfaces are exercised.
		OI:      c.BtDRAM * math.Exp(3*(2*r.Float64()-1)),
		Threads: 1,
	}
	if r.Intn(2) == 0 && c.CalibThreads > 1 {
		ks.Threads = c.CalibThreads
	}
	if r.Intn(4) > 0 { // three in four kernels carry cache-hit traffic
		ks.QBytes = int64(logu(0.1, 100) * float64(q))
		levels := 1 + r.Intn(len(c.HitLatency))
		for i := 0; i < levels; i++ {
			ks.HitRatio = append(ks.HitRatio, r.Float64())
			ks.MissRatio = append(ks.MissRatio, 0.05+0.95*r.Float64())
		}
	}
	return model.New(c, ks)
}

// gridDistance measures how many cap-grid steps apart two answers are.
func gridDistance(tg *roofline.Target, a, b float64) int {
	p := tg.Platform
	d := hw.GridIndex(p.UncoreMin, p.UncoreMax, p.CapStep, a) -
		hw.GridIndex(p.UncoreMin, p.UncoreMax, p.CapStep, b)
	if d < 0 {
		d = -d
	}
	return d
}

// checkEquivalence runs the table and live bisection over the same
// models and asserts the acceptance bound: among table-answered samples,
// >= 99% within one uncore grid step of the live answer. minHitRate
// additionally bounds how often the table may refuse (fall back).
func checkEquivalence(t *testing.T, tg *roofline.Target, tb *Table, models []*model.Model, minHitRate float64) {
	t.Helper()
	freqs := tg.Platform.UncoreSteps()
	opts := search.DefaultOptions()
	hits, within := 0, 0
	worst := 0
	for _, m := range models {
		fTab, ok := tb.Lookup(m)
		if !ok {
			continue // honest fallback: the serve path runs live search
		}
		hits++
		res, err := search.Run(nil, m, freqs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d := gridDistance(tg, fTab, res.BestGHz); d <= 1 {
			within++
		} else if d > worst {
			worst = d
		}
	}
	if hits < int(minHitRate*float64(len(models))) {
		t.Fatalf("table answered only %d/%d samples (want >= %.0f%%) — the axes or the spread guard are off",
			hits, len(models), 100*minHitRate)
	}
	if rate := float64(within) / float64(hits); rate < 0.99 {
		t.Fatalf("only %.2f%% of %d table answers within one grid step of live search (worst miss: %d steps); want >= 99%%",
			100*rate, hits, worst)
	}
}

// TestTableSearchEquivalence is the headline property: for randomized
// (kernel, size, backend) triples, the precomputed table and live
// PolyUFC-SEARCH agree on f_c within one uncore grid step on >= 99% of
// the points the table answers — on BDW, RPL and the fractional-grid
// wide-uncore description.
func TestTableSearchEquivalence(t *testing.T) {
	for _, name := range equivBackends {
		name := name
		t.Run(name, func(t *testing.T) {
			tg := testTarget(t, name)
			tb := testTable(t, name)
			r := rand.New(rand.NewSource(1))
			models := make([]*model.Model, 400)
			for i := range models {
				models[i] = randomKernel(r, tg.Constants)
			}
			checkEquivalence(t, tg, tb, models, 0.5)
		})
	}
}

// TestRidgeNeighborhoodEquivalence tests the ridge point densely: the
// cap surface moves fastest where the CB/BB characterization flips
// (phi near BtDRAM), which is exactly where the axes are densified. The
// spread guard may refuse cliff cells (those fall back to live search),
// but what the table does answer must still meet the one-step bound.
func TestRidgeNeighborhoodEquivalence(t *testing.T) {
	for _, name := range equivBackends {
		name := name
		t.Run(name, func(t *testing.T) {
			tg := testTarget(t, name)
			tb := testTable(t, name)
			c := tg.Constants
			fRef := tb.refFreq()
			var models []*model.Model
			for i := 0; i <= 60; i++ {
				phi := c.BtDRAM * (0.8 + 0.45*float64(i)/60) // [0.8, 1.25] x ridge
				for _, ratio := range []float64{0.01, 0.1, 0.5, 1, 2, 10, 100} {
					for _, cls := range []roofline.Class{roofline.ComputeBound, roofline.BandwidthBound} {
						m, err := SyntheticModel(c, cls, phi, ratio, fRef)
						if err != nil {
							t.Fatal(err)
						}
						models = append(models, m)
					}
				}
			}
			// Ridge witnesses sit on or next to densified axis points, so
			// the hit-rate floor is stricter than for arbitrary kernels.
			checkEquivalence(t, tg, tb, models, 0.7)
		})
	}
}

// TestDecomposeRoundTrip: a synthetic witness decomposes back to the
// shape it was built from — the two halves of the equivalence argument
// (sweep and lookup) agree on what a shape is.
func TestDecomposeRoundTrip(t *testing.T) {
	tg := testTarget(t, "bdw")
	c := tg.Constants
	fRef := testTable(t, "bdw").refFreq()
	for _, phi := range []float64{0.01, 1, c.BtDRAM, 100} {
		for _, ratio := range []float64{0, 0.5, 1, 50} {
			for _, cls := range []roofline.Class{roofline.ComputeBound, roofline.BandwidthBound} {
				m, err := SyntheticModel(c, cls, phi, ratio, fRef)
				if err != nil {
					t.Fatal(err)
				}
				sh, ok := Decompose(m, fRef)
				if !ok {
					t.Fatalf("witness (phi=%g ratio=%g) does not decompose", phi, ratio)
				}
				if sh.Class != cls {
					t.Fatalf("witness (phi=%g ratio=%g): class %v, want %v", phi, ratio, sh.Class, cls)
				}
				if math.Abs(sh.Phi-phi) > 1e-6*(1+phi) {
					t.Fatalf("witness phi %g decomposed to %g", phi, sh.Phi)
				}
				// Infeasible corners saturate at the feasibility boundary
				// a = phi*TFpu; everywhere else the ratio round-trips.
				wantRatio := math.Max(ratio, phi*c.TFpu/c.MissLat(fRef))
				if math.Abs(sh.Ratio-wantRatio) > 1e-6*(1+wantRatio) {
					t.Fatalf("witness ratio %g decomposed to %g (want %g)", ratio, sh.Ratio, wantRatio)
				}
			}
		}
	}
}

// TestLookupFallsBackOffAxes: kernels outside the tabulated family must
// report !ok, never a fabricated cap.
func TestLookupFallsBackOffAxes(t *testing.T) {
	tg := testTarget(t, "bdw")
	tb := testTable(t, "bdw")
	c := tg.Constants
	noDRAM := model.New(c, model.KernelStats{Flops: 1 << 20, OI: 100, Threads: 1})
	if _, ok := tb.Lookup(noDRAM); ok {
		t.Fatal("table answered a kernel with no DRAM traffic")
	}
	offAxis := model.New(c, model.KernelStats{
		Flops: 1 << 40, QDRAM: 1, QDRAMTime: 1, OI: 1e12, Threads: 1,
	})
	if _, ok := tb.Lookup(offAxis); ok {
		t.Fatal("table answered a kernel beyond the OI axis")
	}
}

// BenchmarkPlanLookup / BenchmarkLiveSearch quantify the serve-path win
// the README quotes: a table lookup versus a live bisection for the same
// kernel.
func BenchmarkPlanLookup(b *testing.B) {
	tg := testTarget(b, "bdw")
	tb := testTable(b, "bdw")
	m := benchKernel(tg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(m); !ok {
			b.Fatal("lookup fell back")
		}
	}
}

func BenchmarkLiveSearch(b *testing.B) {
	tg := testTarget(b, "bdw")
	freqs := tg.Platform.UncoreSteps()
	m := benchKernel(tg)
	opts := search.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(nil, m, freqs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchKernel(tg *roofline.Target) *model.Model {
	r := rand.New(rand.NewSource(42))
	return randomKernel(r, tg.Constants)
}
