package plantable

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"polyufc/internal/model"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
)

// Stats are a Set's serve-path counters: Hits answered from a table,
// Fallbacks deferred to live search (no table for the backend/options,
// off-axis kernel, or a steep cell), Stale lookups rejected because the
// table no longer matches the target.
type Stats struct {
	Loaded    int   `json:"loaded"`
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
	Stale     int64 `json:"stale"`
}

// Set holds the loaded plan tables of a process (one per backend,
// search configuration and tiling strategy) plus the
// hit/fallback/staleness counters the daemon reports in /statsz. It is
// safe for concurrent use.
type Set struct {
	mu     sync.RWMutex
	tables map[string]*Table // keyed by backend|objective|epsilon|tiling

	hits      atomic.Int64
	fallbacks atomic.Int64
	stale     atomic.Int64
}

// NewSet returns an empty set.
func NewSet() *Set {
	return &Set{tables: map[string]*Table{}}
}

func tableKey(backend, objective string, eps float64, tilingName string, socket int) string {
	if tilingName == "" {
		tilingName = tiling.NamePluto
	}
	key := fmt.Sprintf("%s|%s|%g|%s", backend, objective, eps, tilingName)
	if socket != 0 {
		// Socket 0 keeps the pre-topology key, so single-socket sets
		// fingerprint identically.
		key += fmt.Sprintf("|s%d", socket)
	}
	return key
}

// Add validates and registers a table. A table for the same backend,
// search configuration, tiling strategy and socket domain replaces the
// previous one.
func (s *Set) Add(tb *Table) error {
	if err := tb.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[tableKey(tb.Backend, tb.Objective, tb.Epsilon, tb.TilingName(), tb.Socket)] = tb
	return nil
}

// Len returns the number of loaded tables.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables)
}

// Tables returns the loaded tables in deterministic order.
func (s *Set) Tables() []*Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.tables))
	for k := range s.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Table, len(keys))
	for i, k := range keys {
		out[i] = s.tables[k]
	}
	return out
}

// For returns the socket-0 table answering for a target, search
// configuration and tiling strategy (a tiling.Spec fingerprint; ""
// means pluto), or nil when none is loaded. A loaded table whose
// backend description or calibration hash no longer matches counts as
// stale and is not returned — staleness is surfaced, never silently
// served around.
func (s *Set) For(t *roofline.Target, opts search.Options, tilingName string) *Table {
	return s.ForSocket(t, opts, tilingName, 0)
}

// ForSocket is For for one socket domain of a topology target.
func (s *Set) ForSocket(t *roofline.Target, opts search.Options, tilingName string, socket int) *Table {
	if t == nil || t.Backend == nil {
		return nil
	}
	s.mu.RLock()
	tb := s.tables[tableKey(t.Backend.Name, opts.Objective.String(), opts.Epsilon, tilingName, socket)]
	s.mu.RUnlock()
	if tb == nil {
		return nil
	}
	if err := tb.Matches(t); err != nil {
		if errors.Is(err, ErrStale) {
			s.stale.Add(1)
		}
		return nil
	}
	return tb
}

// Lookup answers one kernel's capping question from the set, counting
// the outcome: a table hit returns the selected cap frequency (an exact
// grid point); anything else — no table, stale table, off-axis kernel,
// steep cell — counts a fallback (or staleness) and reports false so the
// caller runs live search. socket selects the table's uncore domain (0
// on single-socket targets and for nests spanning every socket).
func (s *Set) Lookup(t *roofline.Target, opts search.Options, tilingName string, socket int, m *model.Model) (float64, bool) {
	tb := s.ForSocket(t, opts, tilingName, socket)
	if tb == nil {
		s.fallbacks.Add(1)
		return 0, false
	}
	f, ok := tb.Lookup(m)
	if !ok {
		s.fallbacks.Add(1)
		return 0, false
	}
	s.hits.Add(1)
	return f, true
}

// Stats snapshots the serve-path counters.
func (s *Set) Stats() Stats {
	return Stats{
		Loaded:    s.Len(),
		Hits:      s.hits.Load(),
		Fallbacks: s.fallbacks.Load(),
		Stale:     s.stale.Load(),
	}
}

// Fingerprint canonicalizes the set's contents for content-addressed
// stage memoization: two pipelines whose sets fingerprint equally answer
// every lookup identically.
func (s *Set) Fingerprint() string {
	if s == nil {
		return ""
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.tables))
	for k, tb := range s.tables {
		keys = append(keys, k+"|"+tb.BackendHash+"|"+tb.CalHash)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}
