package plantable

import (
	"strings"
	"testing"

	"polyufc/internal/model"
	"polyufc/internal/search"
)

// FuzzParsePlanTable drives the plan-table deserializer with arbitrary
// bytes: any input must either parse into a table that validates and
// answers lookups in-range, or return an error — never panic, never a
// half-loaded table. Corrupt, truncated and old-schema tables are the
// crash-recovery surface: serve boots load operator-supplied files.
func FuzzParsePlanTable(f *testing.F) {
	// A small hand-rolled table keeps the seed corpus (and each fuzz
	// worker's warm-up) cheap — the full Build sweep is covered by the
	// equivalence suite, not here.
	tiny := &Table{
		Schema:       SchemaVersion,
		Backend:      "fuzz",
		BackendHash:  "0011223344556677",
		CalHash:      "8899aabbccddeeff",
		Objective:    search.ObjectiveEDP.String(),
		Epsilon:      1e-3,
		UncoreMinGHz: 1.2, UncoreMaxGHz: 2.8, CapStepGHz: 0.1,
		OIAxis:  []float64{0.1, 1, 10},
		MemAxis: []float64{0, 1, 10},
		CB:      [][]int{{0, 1, 2}, {1, 1, 1}, {2, 1, 0}},
		BB:      [][]int{{3, 3, 3}, {4, 4, 4}, {5, 5, 5}},
	}
	if err := tiny.Validate(); err != nil {
		f.Fatal(err)
	}
	valid, err := tiny.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("not a table"))
	f.Add(valid[:len(valid)/2])                                    // torn write
	f.Add([]byte(`{"schema":0}`))                                  // pre-versioning file
	f.Add([]byte(`{"schema":99}`))                                 // future schema
	f.Add([]byte(`{"schema":1,"surprise":true}`))                  // unknown field
	f.Add([]byte(strings.Replace(string(valid), "1.2", "NaN", 1))) // poisoned float
	f.Add([]byte(strings.Replace(string(valid), "\"cb\"", "\"bb\"", 1)))
	// Index corruption: a flipped digit inside a surface row.
	if i := strings.Index(string(valid), "\"cb\""); i >= 0 {
		corrupt := []byte(strings.Replace(string(valid[i:]), "0", "999999", 1))
		f.Add(append([]byte(valid[:i]), corrupt...))
	}

	// A deep in-range kernel: if the fuzzed table validates, Lookup must
	// stay total on it (an answer on the table's own grid, or a clean
	// fallback) — Validate's invariants are what make that safe.
	probeModel := model.New(testTarget(f, "bdw").Constants, model.KernelStats{
		Flops: qRef, QDRAM: qRef, QDRAMTime: qRef, OI: 1, Threads: 1,
	})
	probe := func(t *testing.T, tb *Table) {
		f, ok := tb.Lookup(probeModel)
		if !ok {
			return
		}
		if got := tb.GridFreq(tb.GridSize() - 1); f > got {
			t.Fatalf("lookup answered %v above the grid top %v", f, got)
		}
		if f < tb.GridFreq(0) {
			t.Fatalf("lookup answered %v below the grid bottom %v", f, tb.GridFreq(0))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		tb, err := Parse(data)
		if err != nil {
			return
		}
		if tb == nil {
			t.Fatal("Parse returned nil table and nil error")
		}
		// Parse's contract: whatever it accepts already validates.
		if err := tb.Validate(); err != nil {
			t.Fatalf("Parse accepted a table that fails Validate: %v", err)
		}
		// And survives the operations the serve path runs unconditionally.
		if _, err := tb.Marshal(); err != nil {
			t.Fatalf("re-marshal of accepted table failed: %v", err)
		}
		for i := 0; i < tb.GridSize(); i++ {
			_ = tb.GridFreq(i)
		}
		probe(t, tb)
	})
}
