package plantable

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"polyufc/internal/journal"
	"polyufc/internal/search"
)

// smallOpts keeps the cancel/resume sweeps quick; the resolution does
// not matter for the persistence contract under test.
func smallOpts(j *journal.Journal) BuildOptions {
	return BuildOptions{OIPoints: 9, MemPoints: 7, Journal: j, Concurrency: 2}
}

// TestBuildCancelResume is the crash-safety contract of an interrupted
// sweep: cancellation surfaces as an error (never a partial table), and
// a second Build over the reopened journal completes the sweep and
// produces exactly the table an uninterrupted build would have.
func TestBuildCancelResume(t *testing.T) {
	tg := testTarget(t, "bdw")
	path := t.TempDir() + "/sweep.jsonl"

	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel once a few cells have committed, so the resumed run has
	// real progress to replay.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for j.Stats().Appended < 20 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	tb, err := Build(ctx, tg, smallOpts(j))
	if err == nil {
		// The sweep can win the race and finish before cancel lands;
		// that is not a failure of the contract, just a useless run.
		t.Skip("sweep completed before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v, want context.Canceled", err)
	}
	if tb != nil {
		t.Fatal("cancelled build returned a table alongside its error")
	}
	solved := j.Stats()
	if solved.Entries == 0 {
		t.Fatal("cancelled build checkpointed nothing; resume has no value")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: reopen the journal and finish the sweep.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Stats(); int64(got.Entries) < 1 {
		t.Fatalf("reopened journal replayed %d entries", got.Entries)
	}
	resumed, err := Build(context.Background(), tg, smallOpts(j2))
	if err != nil {
		t.Fatal(err)
	}
	if j2.Stats().Replayed == 0 {
		t.Fatal("resumed build re-swept every cell; journal replay is dead")
	}

	// The resumed table must be indistinguishable from a clean build.
	fresh, err := Build(context.Background(), tg, smallOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, fresh) {
		t.Fatal("resumed table differs from an uninterrupted build")
	}
}

// TestBuildJournalSharesCells: journal keys are axis values, not
// indices, so a finer re-sweep reuses every cell the resolutions share.
func TestBuildJournalSharesCells(t *testing.T) {
	tg := testTarget(t, "bdw")
	path := t.TempDir() + "/sweep.jsonl"
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := Build(context.Background(), tg, smallOpts(j)); err != nil {
		t.Fatal(err)
	}
	before := j.Stats().Appended
	finer := smallOpts(j)
	finer.OIPoints = 17
	if _, err := Build(context.Background(), tg, finer); err != nil {
		t.Fatal(err)
	}
	if j.Stats().Replayed == 0 {
		t.Fatal("finer sweep reused no journaled cells")
	}
	if j.Stats().Appended == before {
		t.Fatal("finer sweep added no new cells; resolutions cannot be identical")
	}
}

// TestBuildRejectsBadTarget: a half-resolved target is an input error,
// not a panic.
func TestBuildRejectsBadTarget(t *testing.T) {
	if _, err := Build(context.Background(), nil, BuildOptions{}); err == nil {
		t.Fatal("Build accepted a nil target")
	}
}

// TestBuildOptionsPinned: the table records the options it was swept
// with, so a non-default build is only served to matching requests.
func TestBuildOptionsPinned(t *testing.T) {
	tg := testTarget(t, "bdw")
	opts := smallOpts(nil)
	opts.Search.Objective = search.ObjectiveEnergy
	opts.Search.Epsilon = 1e-2
	tb, err := Build(context.Background(), tg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.MatchesOptions(opts.Search) {
		t.Fatal("table rejects the options it was built with")
	}
	if tb.MatchesOptions(search.DefaultOptions()) {
		t.Fatal("energy-objective table claims to answer EDP requests")
	}
}
