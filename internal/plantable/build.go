package plantable

import (
	"context"
	"fmt"
	"math"
	"sort"

	"polyufc/internal/hw"
	"polyufc/internal/journal"
	"polyufc/internal/model"
	"polyufc/internal/parallel"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
)

// Default base axis resolutions before ridge densification.
const (
	DefaultOIPoints  = 33
	DefaultMemPoints = 25
)

// qRef is the synthetic kernels' timed DRAM volume. Any value works —
// the search outcome is invariant under it (see the package comment) —
// but a large one keeps the int64 rounding of Flops/QBytes far below
// the axes' resolution.
const qRef = int64(1) << 30

// Adaptive refinement bounds. The base axes are only a starting mesh:
// Build splits any axis interval across which a cap surface moves more
// than maxCellSpread indices, so the resolution tracks the backend's own
// cap grid (a 0.05 GHz-step machine refines further than a 0.1 GHz one).
// An interval narrower than refineMinRatio (or refineMinAbs from a zero
// endpoint) is a genuine surface cliff and stays unsplit — Lookup's
// spread guard refuses those cells and the serve path falls back to live
// search there.
const (
	refineMaxRounds = 8
	refineMinRatio  = 1.01
	refineMinAbs    = 1e-6
	maxAxisPoints   = 2048
)

// BuildOptions parameterizes a plan-table sweep.
type BuildOptions struct {
	// OIPoints and MemPoints set the base (pre-densification) axis
	// resolutions; zero selects the defaults.
	OIPoints  int
	MemPoints int
	// Search pins the objective and epsilon the table answers for. A
	// zero Epsilon selects search.DefaultOptions().
	Search search.Options
	// Tiling stamps the tiling strategy the table answers for (the
	// zero value stamps pluto, the pre-strategy default). The swept
	// surface is strategy-independent — witnesses are synthetic shapes —
	// but the stamp makes the table an axis of the serving
	// configuration, so per-strategy pipelines pin their own tables.
	Tiling tiling.Spec
	// Journal, when set, checkpoints every solved cell to a crash-safe
	// journal file so an interrupted sweep resumes instead of restarting.
	Journal *journal.Journal
	// Concurrency bounds the sweep workers; <1 uses GOMAXPROCS.
	Concurrency int
	// Socket selects the uncore domain the table answers for on a
	// multi-socket topology: the sweep runs against that socket's
	// platform view and calibration. 0 (the default) is the only valid
	// value for single-socket backends.
	Socket int
	// Rhos, when non-empty, extends the sweep with the remote-traffic
	// -ratio axis: the listed ratios (plus an implicit 0 anchor) are
	// swept with the inter-socket traffic term armed, producing the
	// rho-extended surfaces NUMA placements are answered from. Requires
	// a topology backend with a declared interconnect.
	Rhos []float64
}

func (o BuildOptions) normalize() BuildOptions {
	if o.OIPoints <= 0 {
		o.OIPoints = DefaultOIPoints
	}
	if o.MemPoints <= 0 {
		o.MemPoints = DefaultMemPoints
	}
	if o.Search.Epsilon == 0 {
		o.Search = search.DefaultOptions()
	}
	return o
}

// ridgeMultipliers densify the OI axis around phi = BtDRAM, where the
// CB/BB characterization flips and the cap surface moves fastest
// (SNIPPETS.md: ridge_point = peak_compute / peak_bandwidth).
var ridgeMultipliers = []float64{
	0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
	1, 1.05, 1.1, 1.2, 1.4, 1.7, 2, 2.5, 3,
}

// memDensify adds resolution where the compute and memory terms trade
// off (a comparable to M(fRef)).
var memDensify = []float64{0.5, 0.7, 0.85, 1, 1.15, 1.3, 1.5, 2}

// logSpace returns n log-spaced points over [lo, hi].
func logSpace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// dedupAscending sorts and removes (near-)duplicates so the axis is
// strictly ascending as Validate requires.
func dedupAscending(vals []float64) []float64 {
	sort.Float64s(vals)
	out := vals[:0]
	for _, v := range vals {
		if len(out) > 0 && v <= out[len(out)-1]*(1+1e-12) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// OIAxisFor builds the phi axis for a backend: log-spaced across eight
// decades around the ridge point BtDRAM, densified at the ridge.
func OIAxisFor(bt float64, n int) []float64 {
	axis := logSpace(bt*1e-4, bt*1e4, n)
	for _, m := range ridgeMultipliers {
		axis = append(axis, bt*m)
	}
	return dedupAscending(axis)
}

// MemAxisPoints builds the memory-ratio axis: a pure-streaming 0 point
// plus log-spaced coverage of a/M(fRef) across six decades, densified
// around 1.
func MemAxisPoints(n int) []float64 {
	axis := append(logSpace(1e-3, 1e3, n), memDensify...)
	axis = append(axis, 0)
	return dedupAscending(axis)
}

// SyntheticModel constructs the canonical kernel model of one intensive
// shape: timed DRAM volume qRef, Flops = phi*qRef, and enough L1-hit
// traffic to make the frequency-independent per-byte time equal
// ratio*M(fRef). Every real kernel with the same (class, phi, a)
// receives the same search answer as this witness (the search outcome is
// volume-invariant), so sweeping witnesses tabulates the whole family.
func SyntheticModel(c *platform.Constants, cls roofline.Class, phi, ratio, fRef float64) (*model.Model, error) {
	if !(phi >= 0) || !(ratio >= 0) || !(fRef > 0) {
		return nil, fmt.Errorf("plantable: synthetic model: need phi, ratio >= 0 and fRef > 0, got phi=%g ratio=%g fRef=%g", phi, ratio, fRef)
	}
	th := c.CalibThreads
	if th < 1 {
		th = 1
	}
	ks := model.KernelStats{
		Threads:   th, // at the calibration count, tComp = Flops*TFpu exactly
		QDRAM:     qRef,
		QDRAMTime: qRef,
		Flops:     int64(math.Round(phi * float64(qRef))),
	}
	// The frequency-independent per-byte time a = ratio*M(fRef) splits
	// into the compute share phi*TFpu and a cache-hit remainder realized
	// as L1 traffic. Shapes with a < phi*TFpu are infeasible for real
	// kernels (their compute alone exceeds a); the witness saturates at
	// the feasibility boundary, which is where interpolation queries it.
	a := ratio * c.MissLat(fRef)
	extra := a - phi*c.TFpu
	if extra > 0 {
		if len(c.HitLatency) == 0 || !(c.HitLatency[0] > 0) {
			return nil, fmt.Errorf("plantable: synthetic model: constants for %q carry no usable L1 hit latency", c.Platform)
		}
		ks.QBytes = int64(math.Round(8 * extra * float64(qRef) * float64(th) / c.HitLatency[0]))
		ks.HitRatio = []float64{1}
		ks.MissRatio = []float64{1}
	}
	// The class enters the search only through Classify(OI): use phi
	// itself when it lands on the right side of the ridge, otherwise
	// force the requested surface.
	ks.OI = phi
	if c.Classify(phi) != cls {
		if cls == roofline.ComputeBound {
			ks.OI = 2 * c.BtDRAM
		} else {
			ks.OI = c.BtDRAM / 2
		}
	}
	return model.New(c, ks), nil
}

// SyntheticModelNUMA is SyntheticModel with the inter-socket traffic
// term armed: the witness serves rho of its DRAM bytes across the link.
// The search outcome stays volume-invariant — both remote terms scale
// with Q — so sweeping NUMA witnesses tabulates the whole rho > 0
// family the same way the 2D sweep does.
func SyntheticModelNUMA(c *platform.Constants, cls roofline.Class, phi, ratio, rho, fRef float64, rc *model.RemoteCost) (*model.Model, error) {
	if !(rho >= 0) || rho > 1 {
		return nil, fmt.Errorf("plantable: synthetic model: rho must be in [0, 1], got %g", rho)
	}
	if rc == nil {
		return nil, fmt.Errorf("plantable: synthetic model: rho sweep needs a remote cost")
	}
	m, err := SyntheticModel(c, cls, phi, ratio, fRef)
	if err != nil {
		return nil, err
	}
	ks := m.KS
	ks.RemoteRatio = rho
	return model.NewNUMA(c, ks, rc), nil
}

// cellKey is the journal checkpoint key of one solved cell. It is keyed
// by the cell's axis values (not indices), so a resumed sweep at a
// different axis resolution reuses every cell both resolutions share.
func cellKey(tb *Table, cls roofline.Class, phi, ratio float64) string {
	return fmt.Sprintf("plantable/%s/%s/%s/eps%g/%s/phi%.17g/mem%.17g",
		tb.BackendHash, tb.CalHash, tb.Objective, tb.Epsilon, cls, phi, ratio)
}

// cellKeyRho extends cellKey with the remote-ratio coordinate; rho = 0
// cells keep the legacy key so journals written before the axis existed
// resume unchanged.
func cellKeyRho(tb *Table, cls roofline.Class, phi, ratio, rho float64) string {
	if rho == 0 {
		return cellKey(tb, cls, phi, ratio)
	}
	return cellKey(tb, cls, phi, ratio) + fmt.Sprintf("/rho%.17g", rho)
}

// splitPoint is the refinement midpoint of one axis interval: geometric
// for positive intervals, halving toward a zero endpoint. The second
// return is false once the interval is too narrow to split further.
func splitPoint(lo, hi float64) (float64, bool) {
	if lo <= 0 {
		if hi <= refineMinAbs {
			return 0, false
		}
		return hi / 2, true
	}
	if hi/lo < refineMinRatio {
		return 0, false
	}
	return math.Sqrt(lo * hi), true
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Build sweeps one resolved target into its plan table: for every
// (class, phi, ratio) cell, a synthetic witness kernel is searched live
// over the platform's uncore grid and the selected grid index recorded.
// The mesh then refines adaptively — any axis interval across which a
// surface moves more than one cap index is split and re-swept — until
// every cell is interpolation-safe or only sub-percent cliffs remain.
// Cells run in parallel; with a journal, each solved cell is
// checkpointed so a killed sweep resumes where it stopped (journal keys
// are axis values, so re-sweeps and resumed runs share solved cells).
func Build(ctx context.Context, t *roofline.Target, opts BuildOptions) (*Table, error) {
	if t == nil || t.Backend == nil || t.Platform == nil || t.Constants == nil {
		return nil, fmt.Errorf("plantable: build: target must carry backend, platform and constants")
	}
	opts = opts.normalize()
	if opts.Socket < 0 || opts.Socket >= t.NumSockets() {
		return nil, fmt.Errorf("plantable: build: socket %d out of range for %s (%d sockets)",
			opts.Socket, t.Backend.Name, t.NumSockets())
	}
	var rc *model.RemoteCost
	if len(opts.Rhos) > 0 {
		if t.Backend.Interconnect == nil {
			return nil, fmt.Errorf("plantable: build: %s declares no interconnect — a rho sweep needs one", t.Backend.Name)
		}
		sec, jpb := t.RemotePenalty()
		rc = &model.RemoteCost{SecPerByte: sec, JoulesPerByte: jpb}
	}
	// The sweep runs against the selected socket's domain: its platform
	// view (the cap grid) and its calibration. Socket 0 is exactly the
	// pre-topology single-socket sweep.
	c := t.SocketConstants(opts.Socket)
	p := t.Platform
	if opts.Socket > 0 {
		var err error
		if p, err = hw.SocketPlatform(t.Backend, opts.Socket); err != nil {
			return nil, err
		}
	}
	tb := &Table{
		Schema:       SchemaVersion,
		Backend:      t.Backend.Name,
		BackendHash:  t.Backend.Hash(),
		CalHash:      CalibrationHash(c),
		Objective:    opts.Search.Objective.String(),
		Epsilon:      opts.Search.Epsilon,
		Tiling:       opts.Tiling.Fingerprint(),
		UncoreMinGHz: p.UncoreMin,
		UncoreMaxGHz: p.UncoreMax,
		CapStepGHz:   p.CapStep,
		OIAxis:       OIAxisFor(c.BtDRAM, opts.OIPoints),
		MemAxis:      MemAxisPoints(opts.MemPoints),
		Socket:       opts.Socket,
	}
	if rc != nil {
		tb.RhoAxis = dedupAscending(append(append([]float64(nil), opts.Rhos...), 0))
		last := tb.RhoAxis[len(tb.RhoAxis)-1]
		if tb.RhoAxis[0] < 0 || last > 1 {
			return nil, fmt.Errorf("plantable: build: rho axis must stay within [0, 1], got [%g, %g]", tb.RhoAxis[0], last)
		}
	}

	freqs := p.UncoreSteps()
	fRef := tb.refFreq()
	classes := []roofline.Class{roofline.ComputeBound, roofline.BandwidthBound}
	type shape struct {
		cls             roofline.Class
		phi, ratio, rho float64
	}
	cache := map[shape]int{}
	solve := func(shapes []shape) error {
		idxs, err := parallel.Map(ctx, len(shapes), opts.Concurrency, func(ctx context.Context, n int) (int, error) {
			s := shapes[n]
			key := cellKeyRho(tb, s.cls, s.phi, s.ratio, s.rho)
			if opts.Journal != nil {
				var idx int
				if ok, err := opts.Journal.Get(key, &idx); err == nil && ok {
					return idx, nil
				}
			}
			var m *model.Model
			var err error
			if s.rho > 0 {
				m, err = SyntheticModelNUMA(c, s.cls, s.phi, s.ratio, s.rho, fRef, rc)
			} else {
				m, err = SyntheticModel(c, s.cls, s.phi, s.ratio, fRef)
			}
			if err != nil {
				return 0, err
			}
			res, err := search.Run(ctx, m, freqs, opts.Search)
			if err != nil {
				return 0, err
			}
			idx := hw.GridIndex(tb.UncoreMinGHz, tb.UncoreMaxGHz, tb.CapStepGHz, res.BestGHz)
			if opts.Journal != nil {
				if err := opts.Journal.Record(key, idx); err != nil {
					return 0, err
				}
			}
			return idx, nil
		})
		if err != nil {
			return err
		}
		for n, s := range shapes {
			cache[s] = idxs[n]
		}
		return nil
	}

	for round := 0; ; round++ {
		var missing []shape
		for _, cls := range classes {
			for _, phi := range tb.OIAxis {
				for _, ratio := range tb.MemAxis {
					s := shape{cls, phi, ratio, 0}
					if _, ok := cache[s]; !ok {
						missing = append(missing, s)
					}
				}
			}
		}
		if err := solve(missing); err != nil {
			return nil, fmt.Errorf("plantable: build %s: %w", tb.Backend, err)
		}
		if round == refineMaxRounds {
			break
		}
		at := func(cls roofline.Class, phi, ratio float64) int {
			return cache[shape{cls, phi, ratio, 0}]
		}
		var addOI, addMem []float64
		for _, cls := range classes {
			for i := 0; i+1 < len(tb.OIAxis); i++ {
				for _, ratio := range tb.MemAxis {
					if absInt(at(cls, tb.OIAxis[i+1], ratio)-at(cls, tb.OIAxis[i], ratio)) > maxCellSpread {
						if mid, ok := splitPoint(tb.OIAxis[i], tb.OIAxis[i+1]); ok {
							addOI = append(addOI, mid)
						}
						break // one split per interval per round
					}
				}
			}
			for j := 0; j+1 < len(tb.MemAxis); j++ {
				for _, phi := range tb.OIAxis {
					if absInt(at(cls, phi, tb.MemAxis[j+1])-at(cls, phi, tb.MemAxis[j])) > maxCellSpread {
						if mid, ok := splitPoint(tb.MemAxis[j], tb.MemAxis[j+1]); ok {
							addMem = append(addMem, mid)
						}
						break
					}
				}
			}
		}
		if len(addOI)+len(addMem) == 0 ||
			len(tb.OIAxis)+len(addOI) > maxAxisPoints ||
			len(tb.MemAxis)+len(addMem) > maxAxisPoints {
			break
		}
		tb.OIAxis = dedupAscending(append(tb.OIAxis, addOI...))
		tb.MemAxis = dedupAscending(append(tb.MemAxis, addMem...))
	}

	tb.CB = make([][]int, len(tb.OIAxis))
	tb.BB = make([][]int, len(tb.OIAxis))
	for i, phi := range tb.OIAxis {
		tb.CB[i] = make([]int, len(tb.MemAxis))
		tb.BB[i] = make([]int, len(tb.MemAxis))
		for j, ratio := range tb.MemAxis {
			tb.CB[i][j] = cache[shape{roofline.ComputeBound, phi, ratio, 0}]
			tb.BB[i][j] = cache[shape{roofline.BandwidthBound, phi, ratio, 0}]
		}
	}

	if rc != nil {
		// Rho sweep on the refined mesh: the OI/Mem resolution was tuned
		// against the rho = 0 surfaces; rho > 0 cliffs that survive are
		// caught by Lookup's spread guard and fall back to live search.
		var missing []shape
		for _, cls := range classes {
			for _, phi := range tb.OIAxis {
				for _, ratio := range tb.MemAxis {
					for _, rho := range tb.RhoAxis {
						if rho == 0 {
							continue // shared with the 2D sweep
						}
						missing = append(missing, shape{cls, phi, ratio, rho})
					}
				}
			}
		}
		if err := solve(missing); err != nil {
			return nil, fmt.Errorf("plantable: build %s: %w", tb.Backend, err)
		}
		tb.CBR = make([][][]int, len(tb.OIAxis))
		tb.BBR = make([][][]int, len(tb.OIAxis))
		for i, phi := range tb.OIAxis {
			tb.CBR[i] = make([][]int, len(tb.MemAxis))
			tb.BBR[i] = make([][]int, len(tb.MemAxis))
			for j, ratio := range tb.MemAxis {
				tb.CBR[i][j] = make([]int, len(tb.RhoAxis))
				tb.BBR[i][j] = make([]int, len(tb.RhoAxis))
				for k, rho := range tb.RhoAxis {
					tb.CBR[i][j][k] = cache[shape{roofline.ComputeBound, phi, ratio, rho}]
					tb.BBR[i][j][k] = cache[shape{roofline.BandwidthBound, phi, ratio, rho}]
				}
			}
		}
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	return tb, nil
}
