package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (tol %g)", name, got, want, tol)
	}
}

func TestLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	a, b, r2, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "a", a, 3, 1e-9)
	approx(t, "b", b, -7, 1e-9)
	approx(t, "r2", r2, 1, 1e-9)
}

func TestLinearNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 2.5*x+4+r.NormFloat64()*0.1)
	}
	a, b, r2, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "a", a, 2.5, 0.02)
	approx(t, "b", b, 4, 0.1)
	if r2 < 0.99 {
		t.Fatalf("r2 = %f", r2)
	}
}

func TestQuadraticExact(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1.5*x*x - 2*x + 0.5
	}
	a, b, c, r2, err := Quadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "a", a, 1.5, 1e-9)
	approx(t, "b", b, -2, 1e-9)
	approx(t, "c", c, 0.5, 1e-9)
	approx(t, "r2", r2, 1, 1e-9)
}

func TestHyperbolicExact(t *testing.T) {
	// The paper's DRAM miss-penalty shape: M(f) = a/f + b.
	xs := []float64{1.2, 1.6, 2.0, 2.4, 2.8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 40/x + 55
	}
	a, b, r2, err := Hyperbolic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "a", a, 40, 1e-9)
	approx(t, "b", b, 55, 1e-9)
	approx(t, "r2", r2, 1, 1e-9)
}

func TestHyperbolicRejectsZero(t *testing.T) {
	if _, _, _, err := Hyperbolic([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for x=0")
	}
}

func TestPolynomialRoundTrip(t *testing.T) {
	coef := []float64{1, -2, 0.5, 0.25}
	var xs, ys []float64
	for i := -5; i <= 5; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, PolyEval(coef, x))
	}
	got, r2, err := Polynomial(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		approx(t, "coef", got[i], coef[i], 1e-6)
	}
	approx(t, "r2", r2, 1, 1e-9)
}

func TestDegenerateDetected(t *testing.T) {
	if _, _, _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected degenerate error for constant x")
	}
	if _, _, err := Polynomial([]float64{1}, []float64{1}, 3); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
}

func TestPropertyLinearRecovery(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Float64()*10 - 5
		b := r.Float64()*20 - 10
		var xs, ys []float64
		for i := 0; i < 20; i++ {
			x := r.Float64()*10 + 0.1
			xs = append(xs, x)
			ys = append(ys, a*x+b)
		}
		ga, gb, r2, err := Linear(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6 && r2 > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
