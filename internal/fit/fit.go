// Package fit provides the small least-squares toolbox PolyUFC uses to
// derive model constants from micro-benchmark measurements: linear,
// quadratic and hyperbolic (a/x + b) fits with R² quality reporting
// (Sec. V: curve fitting of miss penalty and peak power against uncore
// frequency).
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegenerate is returned when the system is under-determined.
var ErrDegenerate = errors.New("fit: degenerate system")

// Linear fits y = A*x + B, returning the coefficients and R².
func Linear(xs, ys []float64) (a, b, r2 float64, err error) {
	coef, r2, err := LeastSquares(xs, ys, func(x float64) []float64 {
		return []float64{x, 1}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return coef[0], coef[1], r2, nil
}

// Quadratic fits y = A*x² + B*x + C.
func Quadratic(xs, ys []float64) (a, b, c, r2 float64, err error) {
	coef, r2, err := LeastSquares(xs, ys, func(x float64) []float64 {
		return []float64{x * x, x, 1}
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return coef[0], coef[1], coef[2], r2, nil
}

// Hyperbolic fits y = A/x + B (the paper's DRAM miss-penalty shape
// M(f) = a/f + b).
func Hyperbolic(xs, ys []float64) (a, b, r2 float64, err error) {
	for _, x := range xs {
		if x == 0 {
			return 0, 0, 0, fmt.Errorf("fit: hyperbolic fit with x = 0")
		}
	}
	coef, r2, err := LeastSquares(xs, ys, func(x float64) []float64 {
		return []float64{1 / x, 1}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return coef[0], coef[1], r2, nil
}

// Polynomial fits y = sum c_k x^k for k = 0..deg, returning coefficients in
// increasing degree order.
func Polynomial(xs, ys []float64, deg int) (coef []float64, r2 float64, err error) {
	rev, r2, err := LeastSquares(xs, ys, func(x float64) []float64 {
		basis := make([]float64, deg+1)
		p := 1.0
		for k := 0; k <= deg; k++ {
			basis[k] = p
			p *= x
		}
		return basis
	})
	return rev, r2, err
}

// PolyEval evaluates coefficients in increasing degree order at x.
func PolyEval(coef []float64, x float64) float64 {
	y := 0.0
	for k := len(coef) - 1; k >= 0; k-- {
		y = y*x + coef[k]
	}
	return y
}

// LeastSquares solves min ||B c - y||² for an arbitrary basis expansion,
// via the normal equations with Gaussian elimination (partial pivoting).
func LeastSquares(xs, ys []float64, basis func(float64) []float64) ([]float64, float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, 0, fmt.Errorf("fit: need equal-length nonempty samples")
	}
	m := len(basis(xs[0]))
	if len(xs) < m {
		return nil, 0, ErrDegenerate
	}
	// Normal equations: (BᵀB) c = Bᵀ y.
	ata := make([][]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m+1)
	}
	for k, x := range xs {
		row := basis(x)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				ata[i][j] += row[i] * row[j]
			}
			ata[i][m] += row[i] * ys[k]
		}
	}
	coef, err := solve(ata)
	if err != nil {
		return nil, 0, err
	}
	// R².
	var meanY float64
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for k, x := range xs {
		row := basis(x)
		pred := 0.0
		for i, c := range coef {
			pred += c * row[i]
		}
		d := ys[k] - pred
		ssRes += d * d
		t := ys[k] - meanY
		ssTot += t * t
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 1e-12 {
		r2 = 0
	}
	return coef, r2, nil
}

// solve performs Gaussian elimination with partial pivoting on an
// augmented matrix [A | b].
func solve(aug [][]float64) ([]float64, error) {
	n := len(aug)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[best][col]) {
				best = r
			}
		}
		aug[col], aug[best] = aug[best], aug[col]
		if math.Abs(aug[col][col]) < 1e-12 {
			return nil, ErrDegenerate
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col] / aug[col][col]
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = aug[i][n] / aug[i][i]
	}
	return out, nil
}
