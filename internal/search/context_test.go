package search

import (
	"context"
	"errors"
	"testing"

	"polyufc/internal/hw"
)

// countdownCtx cancels itself after n Err checks, so tests can stop the
// bisection deterministically mid-loop without timing games.
type countdownCtx struct {
	context.Context
	cancel context.CancelFunc
	n      int
}

func newCountdownCtx(n int) *countdownCtx {
	ctx, cancel := context.WithCancel(context.Background())
	return &countdownCtx{Context: ctx, cancel: cancel, n: n}
}

func (c *countdownCtx) Err() error {
	c.n--
	if c.n <= 0 {
		c.cancel()
	}
	return c.Context.Err()
}

// An already-cancelled context aborts before any evaluation.
func TestRunCancelledBeforeStart(t *testing.T) {
	p := hw.RPL()
	m, freqs := setup(t, p, cbStats(p.Threads))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, m, freqs, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Evaluated != 0 {
		t.Fatalf("evaluated %d points after cancellation", res.Evaluated)
	}
}

// Cancellation mid-bisection returns the best frequency seen so far with
// ctx.Err(): a timed-out request still gets a usable partial answer.
func TestRunCancelledMidSearchReturnsPartialBest(t *testing.T) {
	p := hw.RPL()
	m, freqs := setup(t, p, cbStats(p.Threads))
	full := mustRun(t, m, freqs, DefaultOptions())

	ctx := newCountdownCtx(3) // survives the entry checks, dies in the loop
	res, err := Run(ctx, m, freqs, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.BestGHz <= 0 {
		t.Fatalf("no partial best returned: %+v", res)
	}
	if res.Evaluated == 0 || res.Evaluated >= full.Evaluated {
		t.Fatalf("evaluated %d, want partial progress below the full run's %d",
			res.Evaluated, full.Evaluated)
	}
	// The partial best is a real point of the grid, never worse than the
	// reference at the driver default.
	def := m.At(p.UncoreMax)
	if res.Best.EDP > def.EDP {
		t.Fatalf("partial best EDP %.3g worse than default %.3g", res.Best.EDP, def.EDP)
	}
	if res.Class != full.Class {
		t.Fatalf("class %v, want %v", res.Class, full.Class)
	}
}

// A nil context behaves like Background: the full search completes.
func TestRunNilContext(t *testing.T) {
	p := hw.BDW()
	m, freqs := setup(t, p, bbStats(p.Threads))
	res, err := Run(nil, m, freqs, DefaultOptions()) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGHz == 0 {
		t.Fatal("nil-ctx search found nothing")
	}
}
