// Package search implements PolyUFC-SEARCH (Sec. VI-C): a binary search
// over the platform's uncore frequency grid (0.1 GHz steps), directed by
// the kernel's CB/BB characterization — CB kernels are pushed toward lower
// frequencies to save energy when the performance loss stays within the
// tunable threshold epsilon; BB kernels toward higher frequencies when
// performance gains track bandwidth gains — with the objective (EDP,
// energy-only or performance-only) deciding acceptance.
package search

import (
	"context"
	"fmt"
	"math"
	"sort"

	"polyufc/internal/model"
	"polyufc/internal/roofline"
)

// Objective selects what the search optimizes.
type Objective int

// Supported objectives (Sec. VI: "multiple metrics, like performance-only,
// energy and EDP").
const (
	ObjectiveEDP Objective = iota
	ObjectiveEnergy
	ObjectivePerformance
)

func (o Objective) String() string {
	switch o {
	case ObjectiveEDP:
		return "edp"
	case ObjectiveEnergy:
		return "energy"
	case ObjectivePerformance:
		return "performance"
	}
	return "objective?"
}

// ParseObjective maps a CLI string to an Objective.
func ParseObjective(s string) (Objective, bool) {
	switch s {
	case "edp", "":
		return ObjectiveEDP, true
	case "energy":
		return ObjectiveEnergy, true
	case "performance", "perf", "time":
		return ObjectivePerformance, true
	}
	return ObjectiveEDP, false
}

// Step records one iteration of the search for reporting.
type Step struct {
	FGHz   float64
	Deltas model.Deltas
	Score  float64
	Taken  bool
}

// Result is the outcome of one search.
type Result struct {
	BestGHz   float64
	Best      model.Estimate
	Class     roofline.Class
	Steps     []Step
	Evaluated int
}

// Options tunes the search.
type Options struct {
	Objective Objective
	// Epsilon is the tunable Perf-vs-BW tolerance of Sec. VI-C; the paper
	// uses 1e-3 for the evaluation.
	Epsilon float64
}

// DefaultOptions returns the paper's evaluation settings.
func DefaultOptions() Options {
	return Options{Objective: ObjectiveEDP, Epsilon: 1e-3}
}

// Fingerprint canonicalizes the options for content-addressed stage
// memoization (internal/pipeline): two search stages with equal
// fingerprints over the same model and frequency grid produce identical
// Results, so their snapshots may be shared.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("obj=%d,eps=%g", o.Objective, o.Epsilon)
}

// score returns the value to minimize.
func score(e model.Estimate, o Objective) float64 {
	switch o {
	case ObjectiveEnergy:
		return e.Joules
	case ObjectivePerformance:
		return e.Seconds
	default:
		return e.EDP
	}
}

// sanitizeGrid drops non-finite and non-positive frequencies and returns
// the grid sorted ascending, copying only when the input needs repair, so
// the bisection's ordering invariant holds for any caller-supplied slice.
func sanitizeGrid(freqs []float64) []float64 {
	clean := true
	for i, f := range freqs {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) || (i > 0 && f < freqs[i-1]) {
			clean = false
			break
		}
	}
	if clean {
		return freqs
	}
	out := make([]float64, 0, len(freqs))
	for _, f := range freqs {
		if f > 0 && !math.IsNaN(f) && !math.IsInf(f, 0) {
			out = append(out, f)
		}
	}
	sort.Float64s(out)
	return out
}

// Run performs the binary search over the frequency grid for one kernel
// model. The grid is the platform's UncoreSteps, sorted ascending;
// unsorted or partially invalid grids are repaired defensively, and an
// empty (or fully invalid) grid returns the zero Result — BestGHz 0 means
// "no cap selected", which callers treat as unprofitable.
//
// Run honors ctx between binary-search steps: when the context is
// cancelled or its deadline expires, the partial best-so-far over the
// frequencies evaluated up to that point is returned together with
// ctx.Err(), so a deadline-bounded request still gets a usable (if
// coarser) cap instead of nothing. A nil ctx means Background.
func Run(ctx context.Context, m *model.Model, freqs []float64, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	freqs = sanitizeGrid(freqs)
	if len(freqs) == 0 {
		return Result{}, ctx.Err()
	}
	cls := m.Class()
	res := Result{Class: cls}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if len(freqs) == 1 {
		// Degenerate grid: the only frequency is both the driver default
		// and the best choice; nothing to search.
		res.Best = m.At(freqs[0])
		res.BestGHz = freqs[0]
		res.Evaluated = 1
		return res, nil
	}

	// Reference point: the driver default (maximum uncore frequency).
	ref := m.At(freqs[len(freqs)-1])
	res.Evaluated++

	// Best-so-far over everything evaluated, so cancellation mid-search
	// can return a meaningful partial answer.
	bestF, bestE := freqs[len(freqs)-1], ref
	note := func(f float64, e model.Estimate) {
		if score(e, opts.Objective) < score(bestE, opts.Objective) {
			bestF, bestE = f, e
		}
	}

	// Directional binary search on the grid. The model's objective is
	// unimodal in f for both classes (Sec. VI-C notes the space is
	// non-convex in (f, I) jointly but the per-kernel slice is explored by
	// bisection): we bisect on the discrete derivative, biased by the
	// characterization through the epsilon gate.
	lo, hi := 0, len(freqs)-1
	eval := func(i int) model.Estimate {
		res.Evaluated++
		e := m.At(freqs[i])
		note(freqs[i], e)
		return e
	}
	for hi-lo > 1 {
		if err := ctx.Err(); err != nil {
			res.BestGHz, res.Best = bestF, bestE
			return res, err
		}
		mid := (lo + hi) / 2
		em := eval(mid)
		en := eval(mid + 1)
		dm := model.DeltasBetween(ref, em)
		better := score(em, opts.Objective) <= score(en, opts.Objective)
		// Epsilon gate (Sec. VI-C): for CB kernels a move to lower
		// frequency is acceptable only if the performance loss does not
		// exceed the bandwidth loss by more than epsilon; for BB kernels a
		// move up requires performance gains to track bandwidth gains.
		if cls == roofline.ComputeBound {
			perfLoss := 1 - dm.Perf
			bwLoss := 1 - dm.BW
			if better && perfLoss-bwLoss > opts.Epsilon {
				better = false // the loss is real work lost, stop descending
			}
		} else {
			dn := model.DeltasBetween(em, en)
			if !better && dn.Perf+opts.Epsilon < dn.BW {
				// Bandwidth grows but performance does not follow: the
				// extra frequency is over-provisioning.
				better = true
			}
		}
		res.Steps = append(res.Steps, Step{
			FGHz: freqs[mid], Deltas: dm,
			Score: score(em, opts.Objective), Taken: better,
		})
		if better {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Pick the better endpoint.
	el, eh := eval(lo), eval(hi)
	if score(el, opts.Objective) <= score(eh, opts.Objective) {
		res.BestGHz, res.Best = freqs[lo], el
	} else {
		res.BestGHz, res.Best = freqs[hi], eh
	}
	return res, nil
}
