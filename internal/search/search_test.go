package search

import (
	"context"
	"math"
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/model"
	"polyufc/internal/roofline"
)

func mustRun(t *testing.T, m *model.Model, freqs []float64, opts Options) Result {
	t.Helper()
	res, err := Run(context.Background(), m, freqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func setup(t *testing.T, p *hw.Platform, ks model.KernelStats) (*model.Model, []float64) {
	t.Helper()
	c, err := roofline.Calibrate(hw.NewMachine(p))
	if err != nil {
		t.Fatal(err)
	}
	return model.New(c, ks), p.UncoreSteps()
}

func cbStats(threads int) model.KernelStats {
	return model.KernelStats{
		Flops: 2e9, QBytes: 8e9, QDRAM: 64e6, OI: 2e9 / 64e6,
		HitRatio:  []float64{0.95, 0.6, 0.5},
		MissRatio: []float64{0.05, 0.4, 0.5},
		Threads:   threads,
	}
}

func bbStats(threads int) model.KernelStats {
	return model.KernelStats{
		Flops: 4e7, QBytes: 4e8, QDRAM: 64e7, OI: 4e7 / 64e7,
		HitRatio:  []float64{0.6, 0.2, 0.1},
		MissRatio: []float64{0.4, 0.8, 0.9},
		Threads:   threads,
	}
}

func TestCBSearchGoesLow(t *testing.T) {
	for _, p := range hw.Platforms() {
		m, freqs := setup(t, p, cbStats(p.Threads))
		res := mustRun(t, m, freqs, DefaultOptions())
		if res.Class != roofline.ComputeBound {
			t.Fatalf("%s: class = %v", p.Name, res.Class)
		}
		mid := (p.UncoreMin + p.UncoreMax) / 2
		if res.BestGHz > mid {
			t.Fatalf("%s: CB cap %.1f GHz above midpoint", p.Name, res.BestGHz)
		}
		// The found cap must beat the driver default on the model.
		def := m.At(p.UncoreMax)
		if res.Best.EDP >= def.EDP {
			t.Fatalf("%s: no EDP improvement (%.3g vs %.3g)", p.Name, res.Best.EDP, def.EDP)
		}
	}
}

func TestBBSearchGoesHighButNotMax(t *testing.T) {
	for _, p := range hw.Platforms() {
		m, freqs := setup(t, p, bbStats(p.Threads))
		res := mustRun(t, m, freqs, DefaultOptions())
		if res.Class != roofline.BandwidthBound {
			t.Fatalf("%s: class = %v", p.Name, res.Class)
		}
		mid := (p.UncoreMin + p.UncoreMax) / 2
		if res.BestGHz <= mid {
			t.Fatalf("%s: BB cap %.1f GHz at or below midpoint", p.Name, res.BestGHz)
		}
		def := m.At(p.UncoreMax)
		if res.Best.EDP > def.EDP {
			t.Fatalf("%s: BB search worse than default", p.Name)
		}
	}
}

func TestSearchFindsGridOptimum(t *testing.T) {
	// The binary search must land on (or tie with) the exhaustive optimum
	// for the unimodal model objective.
	for _, mk := range []func(int) model.KernelStats{cbStats, bbStats} {
		p := hw.RPL()
		m, freqs := setup(t, p, mk(p.Threads))
		res := mustRun(t, m, freqs, DefaultOptions())
		bestF, bestEDP := 0.0, 0.0
		for _, f := range freqs {
			e := m.At(f)
			if bestEDP == 0 || e.EDP < bestEDP {
				bestEDP, bestF = e.EDP, f
			}
		}
		if res.Best.EDP > bestEDP*1.02 {
			t.Fatalf("search EDP %.4g at %.1f vs exhaustive %.4g at %.1f",
				res.Best.EDP, res.BestGHz, bestEDP, bestF)
		}
	}
}

func TestSearchLogarithmicEvaluations(t *testing.T) {
	p := hw.RPL() // 39 grid points
	m, freqs := setup(t, p, cbStats(p.Threads))
	res := mustRun(t, m, freqs, DefaultOptions())
	if res.Evaluated > 16 {
		t.Fatalf("search evaluated %d points on a 39-point grid", res.Evaluated)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps recorded")
	}
}

func TestObjectives(t *testing.T) {
	p := hw.BDW()
	m, freqs := setup(t, p, bbStats(p.Threads))
	perfRes := mustRun(t, m, freqs, Options{Objective: ObjectivePerformance, Epsilon: 1e-3})
	energyRes := mustRun(t, m, freqs, Options{Objective: ObjectiveEnergy, Epsilon: 1e-3})
	// Performance-only must choose a frequency at least as high as
	// energy-only for a BB kernel.
	if perfRes.BestGHz < energyRes.BestGHz {
		t.Fatalf("perf cap %.1f < energy cap %.1f", perfRes.BestGHz, energyRes.BestGHz)
	}
}

func TestParseObjective(t *testing.T) {
	for s, want := range map[string]Objective{
		"edp": ObjectiveEDP, "": ObjectiveEDP,
		"energy": ObjectiveEnergy, "perf": ObjectivePerformance,
		"performance": ObjectivePerformance, "time": ObjectivePerformance,
	} {
		got, ok := ParseObjective(s)
		if !ok || got != want {
			t.Fatalf("ParseObjective(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseObjective("bogus"); ok {
		t.Fatal("bogus objective accepted")
	}
}

func TestEmptyGrid(t *testing.T) {
	p := hw.BDW()
	m, _ := setup(t, p, cbStats(1))
	res := mustRun(t, m, nil, DefaultOptions())
	if res.BestGHz != 0 || res.Evaluated != 0 {
		t.Fatalf("empty grid result = %+v", res)
	}
	// A grid of only invalid entries degenerates to empty.
	res = mustRun(t, m, []float64{0, -1.2, math.NaN(), math.Inf(1)}, DefaultOptions())
	if res.BestGHz != 0 || res.Evaluated != 0 {
		t.Fatalf("all-invalid grid result = %+v", res)
	}
}

func TestSingleElementGrid(t *testing.T) {
	p := hw.BDW()
	m, _ := setup(t, p, cbStats(1))
	res := mustRun(t, m, []float64{1.5}, DefaultOptions())
	if res.BestGHz != 1.5 || res.Evaluated != 1 || len(res.Steps) != 0 {
		t.Fatalf("single-element grid result = %+v", res)
	}
	if res.Best != m.At(1.5) {
		t.Fatal("single-element grid did not evaluate its frequency")
	}
}

func TestUnsortedGridIsRepaired(t *testing.T) {
	p := hw.RPL()
	m, freqs := setup(t, p, cbStats(p.Threads))
	want := mustRun(t, m, freqs, DefaultOptions())

	shuffled := make([]float64, len(freqs))
	copy(shuffled, freqs)
	for i := range shuffled { // deterministic reversal, worst-case disorder
		j := len(shuffled) - 1 - i
		if i >= j {
			break
		}
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	got := mustRun(t, m, shuffled, DefaultOptions())
	if got.BestGHz != want.BestGHz || got.Best != want.Best {
		t.Fatalf("unsorted grid found %.1f GHz, sorted found %.1f GHz", got.BestGHz, want.BestGHz)
	}
	// The caller's slice is repaired on a copy, not in place.
	if shuffled[0] != freqs[len(freqs)-1] {
		t.Fatal("Run mutated the caller's grid")
	}
	// Invalid entries mixed into a valid grid are dropped, not searched.
	dirty := append([]float64{0, math.NaN()}, freqs...)
	got = mustRun(t, m, dirty, DefaultOptions())
	if got.BestGHz != want.BestGHz {
		t.Fatalf("dirty grid found %.1f GHz, want %.1f GHz", got.BestGHz, want.BestGHz)
	}
}
