package parallel

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func memoGet(t *testing.T, m *Memo[int, string], k int) string {
	t.Helper()
	v, err := m.Do(context.Background(), k, func() (string, error) {
		return fmt.Sprintf("v%d", k), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// SetLimit evicts in least-recently-used order and counts every drop.
func TestMemoLRUEvictionOrder(t *testing.T) {
	var m Memo[int, string]
	m.SetLimit(3)
	for k := 0; k < 3; k++ {
		memoGet(t, &m, k)
	}
	memoGet(t, &m, 0) // 0 becomes most recent: order 0,2,1
	memoGet(t, &m, 3) // evicts 1
	memoGet(t, &m, 1) // miss (recompute), evicts 2
	if got := m.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	if got := m.Evictions(); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 5 {
		t.Fatalf("hits/misses = %d/%d, want 1/5", hits, misses)
	}
	// 0, 3, 1 survive as hits; 2 was evicted.
	hitsBefore, _ := m.Stats()
	for _, k := range []int{0, 3, 1} {
		memoGet(t, &m, k)
	}
	if hits, _ := m.Stats(); hits != hitsBefore+3 {
		t.Fatalf("survivors missed: hits %d -> %d", hitsBefore, hits)
	}
}

// Shrinking the limit below the current size evicts immediately, and
// limit <= 0 restores unbounded growth.
func TestMemoSetLimitShrinkAndUnbound(t *testing.T) {
	var m Memo[int, string]
	for k := 0; k < 8; k++ {
		memoGet(t, &m, k)
	}
	m.SetLimit(2)
	if m.Len() != 2 || m.Evictions() != 6 {
		t.Fatalf("len %d evictions %d after shrink", m.Len(), m.Evictions())
	}
	m.SetLimit(0)
	for k := 10; k < 20; k++ {
		memoGet(t, &m, k)
	}
	if m.Len() != 12 {
		t.Fatalf("unbounded memo evicted: len %d", m.Len())
	}
}

// An in-flight computation is never evicted: waiters hold the entry while
// churn fills and overflows the LRU around it.
func TestMemoLRUInFlightSurvivesEviction(t *testing.T) {
	var m Memo[int, string]
	m.SetLimit(1)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := m.Do(context.Background(), 99, func() (string, error) {
			close(started)
			<-release
			return "slow", nil
		})
		if err != nil || v != "slow" {
			t.Errorf("slow Do = %q, %v", v, err)
		}
	}()
	<-started
	for k := 0; k < 5; k++ {
		memoGet(t, &m, k) // churns the one settled slot
	}
	// A waiter arriving now must still join the in-flight computation.
	wg.Add(1)
	var waited string
	go func() {
		defer wg.Done()
		waited, _ = m.Do(context.Background(), 99, func() (string, error) {
			t.Error("in-flight entry was evicted: fn re-ran")
			return "", nil
		})
	}()
	close(release)
	wg.Wait()
	if waited != "slow" {
		t.Fatalf("waiter got %q", waited)
	}
	// Once settled it lands in the LRU and is evictable again.
	memoGet(t, &m, 100)
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
}

// Reset clears entries, statistics and the LRU order but keeps the limit.
func TestMemoResetKeepsLimit(t *testing.T) {
	var m Memo[int, string]
	m.SetLimit(2)
	for k := 0; k < 4; k++ {
		memoGet(t, &m, k)
	}
	m.Reset()
	if m.Len() != 0 || m.Evictions() != 0 {
		t.Fatalf("reset left len %d evictions %d", m.Len(), m.Evictions())
	}
	for k := 0; k < 4; k++ {
		memoGet(t, &m, k)
	}
	if m.Len() != 2 || m.Evictions() != 2 {
		t.Fatalf("limit lost across Reset: len %d evictions %d", m.Len(), m.Evictions())
	}
}

// Concurrent churn against a tiny limit stays race-clean and converges to
// at most limit settled entries.
func TestMemoLRUConcurrentChurn(t *testing.T) {
	var m Memo[int, string]
	m.SetLimit(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (w*7 + i) % 16
				v, err := m.Do(context.Background(), k, func() (string, error) {
					return fmt.Sprintf("v%d", k), nil
				})
				if err != nil || v != fmt.Sprintf("v%d", k) {
					t.Errorf("Do(%d) = %q, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() > 4 {
		t.Fatalf("len = %d exceeds limit", m.Len())
	}
}
