// Package parallel is the evaluation engine behind the paper-scale sweeps:
// a bounded worker pool (ForEach/Map) and a memoizing, singleflight result
// cache (Memo). The evaluation of Sec. VII is embarrassingly parallel
// across kernels, platforms and frequency points, so every hot renderer in
// internal/experiments fans out through this package.
//
// Determinism policy: workers never render output. Map collects results
// into a slice indexed by input position, callers render from that slice
// in order, and on failure the lowest-index error is returned — so a run
// at concurrency N is byte-identical to the serial run at concurrency 1.
package parallel

import (
	"container/list"
	"context"
	"errors"
	"runtime"
	"sync"
)

// Workers resolves a concurrency knob: n < 1 selects GOMAXPROCS, the
// serial fallback is 1.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(ctx, i) for i in [0, n) on at most workers goroutines.
// A workers value < 1 means GOMAXPROCS; workers == 1 runs inline with no
// goroutines (the serial fallback). The first error — lowest index, for
// determinism — cancels the derived context passed to fn, the pool drains
// its in-flight work, and that error is returned. Cancellation of ctx
// stops the pool between items and returns ctx.Err().
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		// A cancellation error observed after a real failure is the pool
		// draining, not a finding of its own.
		if errors.Is(err, context.Canceled) && firstErr != nil {
			mu.Unlock()
			return
		}
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if wctx.Err() != nil {
					return
				}
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(wctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn over [0, n) through ForEach and returns the results ordered
// by input index. On error the partial slice is discarded and only the
// error is returned.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// memoEntry is one in-flight or settled computation.
type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
	// elem is the entry's position in the LRU order once settled; nil
	// while the computation is in flight (in-flight entries are never
	// evicted — singleflight waiters hold them).
	elem *list.Element
}

// Memo is a concurrency-safe, singleflight result cache: concurrent Do
// calls for the same key run the function once and share its result.
// Failed computations are not cached — the next Do for that key retries.
// The cache is unbounded by default; SetLimit caps it with LRU eviction
// so long-running processes (the serving daemon) don't leak memory.
// The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu        sync.Mutex
	entries   map[K]*memoEntry[V]
	order     *list.List // settled keys, front = most recently used
	limit     int
	hits      int64
	misses    int64
	evictions int64
}

// Do returns the cached value for key, computing it with fn on the first
// call. Waiters whose ctx is cancelled while another goroutine computes
// return ctx.Err() without discarding the in-flight computation.
func (m *Memo[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	v, _, err := m.DoShared(ctx, key, fn)
	return v, err
}

// DoShared is Do plus provenance: shared reports whether the value came
// from the cache (a settled entry or another goroutine's in-flight
// computation) rather than this call's own fn. The pipeline stage cache
// uses it to tell cache-hit events from cold runs.
func (m *Memo[K, V]) DoShared(ctx context.Context, key K, fn func() (V, error)) (v V, shared bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m.mu.Lock()
	if m.entries == nil {
		m.entries = map[K]*memoEntry[V]{}
	}
	if m.order == nil {
		m.order = list.New()
	}
	if e, ok := m.entries[key]; ok {
		m.hits++
		if e.elem != nil {
			m.order.MoveToFront(e.elem)
		}
		m.mu.Unlock()
		select {
		case <-e.done:
			return e.val, true, e.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	m.entries[key] = e
	m.misses++
	m.mu.Unlock()

	e.val, e.err = fn()
	m.mu.Lock()
	if m.entries[key] == e { // still registered (Reset may have dropped us)
		if e.err != nil {
			delete(m.entries, key)
		} else {
			e.elem = m.order.PushFront(key)
			m.evictLocked()
		}
	}
	m.mu.Unlock()
	close(e.done)
	return e.val, false, e.err
}

// evictLocked drops least-recently-used settled entries until the cache
// fits the limit. In-flight entries carry no list element and survive.
func (m *Memo[K, V]) evictLocked() {
	if m.limit <= 0 || m.order == nil {
		return
	}
	for m.order.Len() > m.limit {
		back := m.order.Back()
		key := back.Value.(K)
		m.order.Remove(back)
		delete(m.entries, key)
		m.evictions++
	}
}

// SetLimit bounds the cache to at most n settled entries, evicting the
// least recently used beyond it. n <= 0 restores the unbounded default.
func (m *Memo[K, V]) SetLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limit = n
	m.evictLocked()
}

// Stats returns the hit and miss counts so far.
func (m *Memo[K, V]) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Evictions returns how many settled entries the LRU bound has dropped.
func (m *Memo[K, V]) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// Len returns the number of cached (settled or in-flight) entries.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Reset drops every cached entry and zeroes the statistics. In-flight
// computations finish but are not re-registered. The limit persists.
func (m *Memo[K, V]) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = nil
	m.order = nil
	m.hits, m.misses, m.evictions = 0, 0, 0
}
