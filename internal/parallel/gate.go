package parallel

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by Gate.Acquire when both the execution slots
// and the bounded wait queue are full: the caller should shed the request
// (HTTP 429) instead of queueing unboundedly.
var ErrSaturated = errors.New("parallel: admission queue full")

// GateStats is a snapshot of one gate's admission counters.
type GateStats struct {
	// Admitted counts successful Acquires, Rejected the ErrSaturated
	// sheds, Cancelled the waiters whose context expired in the queue.
	Admitted, Rejected, Cancelled int64
	// Active is the number of held slots, Waiting the queued callers.
	Active, Waiting int
}

// Gate is the admission controller in front of a worker pool: at most
// `slots` callers run at once, at most `queue` more wait for a slot, and
// everyone beyond that is shed immediately with ErrSaturated. It bounds
// both the concurrency and the latency a request can hide in the queue.
type Gate struct {
	sem      chan struct{}
	mu       sync.Mutex
	maxQueue int
	waiting  int

	admitted  int64
	rejected  int64
	cancelled int64
}

// NewGate builds a gate with the given execution slots (minimum 1; pass
// Workers(n) to resolve a concurrency knob) and wait-queue bound (0 means
// no queue: shed as soon as every slot is busy).
func NewGate(slots, queue int) *Gate {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{sem: make(chan struct{}, slots), maxQueue: queue}
}

// Acquire claims an execution slot, queueing when all slots are busy. It
// returns ErrSaturated without blocking when the queue is full, and
// ctx.Err() when the context expires while queued. A nil error must be
// paired with exactly one Release.
func (g *Gate) Acquire(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case g.sem <- struct{}{}:
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return nil
	default:
	}
	g.mu.Lock()
	if g.waiting >= g.maxQueue {
		g.rejected++
		g.mu.Unlock()
		return ErrSaturated
	}
	g.waiting++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.sem <- struct{}{}:
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		g.cancelled++
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Release frees a slot claimed by a successful Acquire.
func (g *Gate) Release() {
	select {
	case <-g.sem:
	default:
		panic("parallel: Gate.Release without Acquire")
	}
}

// Stats returns a snapshot of the admission counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{
		Admitted: g.admitted, Rejected: g.rejected, Cancelled: g.cancelled,
		Active: len(g.sem), Waiting: g.waiting,
	}
}
