package parallel

import (
	"testing"

	"polyufc/internal/leakcheck"
)

// The worker pool and singleflight memo are the two places the compiler
// parks goroutines; leak-check every test run of this package.
func TestMain(m *testing.M) { leakcheck.Main(m) }
