package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := ForEach(context.Background(), 50, workers, func(_ context.Context, i int) error {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight %d exceeds %d workers", p, workers)
	}
}

func TestForEachSerialFallbackRunsInline(t *testing.T) {
	order := []int{}
	err := ForEach(context.Background(), 5, 1, func(_ context.Context, i int) error {
		order = append(order, i) // no synchronization: must be inline
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachPropagatesLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("item %d failed", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 20, workers, func(_ context.Context, i int) error {
			if i == 3 || i == 11 {
				return boom(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if got := err.Error(); got != "item 3 failed" && workers > 1 && got != "item 11 failed" {
			t.Fatalf("workers=%d: unexpected error %q", workers, got)
		}
		if workers == 1 && err.Error() != "item 3 failed" {
			t.Fatalf("serial must fail on the first item in order, got %q", err)
		}
	}
}

func TestForEachErrorCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int64
	errBoom := errors.New("boom")
	err := ForEach(context.Background(), 1000, 2, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool did not stop early: ran %d items", n)
	}
}

func TestForEachHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 10, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	errc := make(chan error, 1)
	go func() {
		errc <- ForEach(ctx, 1000, 2, func(ctx context.Context, i int) error {
			once.Do(func() { close(started) })
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return nil
			}
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not drain after cancellation")
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(1) != 1 || Workers(7) != 7 {
		t.Fatal("explicit worker counts must pass through")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("defaulted worker count must be at least 1")
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1 (singleflight)", c)
	}
	hits, misses := m.Stats()
	if misses != 1 || hits != 31 {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestMemoDoSharedReportsProvenance(t *testing.T) {
	var m Memo[string, int]
	v, shared, err := m.DoShared(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || shared {
		t.Fatalf("cold DoShared = %d, shared=%v, %v; want 7, false, nil", v, shared, err)
	}
	v, shared, err = m.DoShared(context.Background(), "k", func() (int, error) {
		t.Error("fn must not run on a settled entry")
		return 0, nil
	})
	if err != nil || v != 7 || !shared {
		t.Fatalf("warm DoShared = %d, shared=%v, %v; want 7, true, nil", v, shared, err)
	}

	// A waiter on an in-flight computation is shared too.
	block := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, shared, _ := m.DoShared(context.Background(), "slow", func() (int, error) {
			close(started)
			<-block
			return 1, nil
		})
		if shared {
			t.Error("computing call must report shared=false")
		}
	}()
	<-started
	waiter := make(chan bool, 1)
	go func() {
		_, shared, _ := m.DoShared(context.Background(), "slow", func() (int, error) { return 2, nil })
		waiter <- shared
	}()
	close(block)
	if !<-waiter {
		t.Fatal("in-flight waiter must report shared=true")
	}
	<-done
}

func TestMemoDoesNotCacheErrors(t *testing.T) {
	var m Memo[int, string]
	errBoom := errors.New("boom")
	calls := 0
	_, err := m.Do(context.Background(), 1, func() (string, error) {
		calls++
		return "", errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	v, err := m.Do(context.Background(), 1, func() (string, error) {
		calls++
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("retry = %q, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want a retry after the error", calls)
	}
}

func TestMemoWaiterHonorsCancellation(t *testing.T) {
	var m Memo[string, int]
	block := make(chan struct{})
	go m.Do(context.Background(), "k", func() (int, error) {
		<-block
		return 7, nil
	})
	for m.Len() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.Do(ctx, "k", func() (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v", err)
	}
	close(block)
	// The original computation still settles and is served afterwards.
	v, err := m.Do(context.Background(), "k", func() (int, error) { return 0, errors.New("must not run") })
	if err != nil || v != 7 {
		t.Fatalf("post-cancel Do = %d, %v", v, err)
	}
}

func TestMemoReset(t *testing.T) {
	var m Memo[int, int]
	m.Do(context.Background(), 1, func() (int, error) { return 1, nil })
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("len after reset = %d", m.Len())
	}
	calls := 0
	m.Do(context.Background(), 1, func() (int, error) { calls++; return 1, nil })
	if calls != 1 {
		t.Fatal("reset must force recomputation")
	}
	hits, misses := m.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("stats after reset = %d/%d", hits, misses)
	}
}

func TestMemoManyKeysUnderContention(t *testing.T) {
	var m Memo[int, int]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				v, err := m.Do(context.Background(), k, func() (int, error) { return 2 * k, nil })
				if err != nil || v != 2*k {
					t.Errorf("key %d = %d, %v", k, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Len() != 100 {
		t.Fatalf("len = %d", m.Len())
	}
}
