package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
)

// A full gate (slots busy, queue full) sheds load with ErrSaturated
// instead of queueing unboundedly.
func TestGateShedsLoadWhenSaturated(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Second caller waits in the queue; park it on a goroutine.
	queued := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := g.Acquire(ctx)
		queued <- err
		if err == nil {
			g.Release()
		}
	}()
	// Wait until the goroutine occupies the queue slot.
	for g.Stats().Waiting == 0 {
		runtime.Gosched()
	}
	// Third caller: slots busy, queue full -> shed.
	if err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	st := g.Stats()
	if st.Rejected != 1 || st.Active != 1 || st.Waiting != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Releasing the slot admits the queued caller.
	g.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	wg.Wait()
	if st := g.Stats(); st.Admitted != 2 {
		t.Fatalf("admitted = %d, want 2", st.Admitted)
	}
}

// A caller cancelled while queued gets its context error and frees the
// queue slot.
func TestGateCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- g.Acquire(ctx)
	}()
	for g.Stats().Waiting == 0 {
		runtime.Gosched()
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := g.Stats()
	if st.Waiting != 0 || st.Cancelled != 1 {
		t.Fatalf("stats = %+v", st)
	}
	g.Release()
	// The gate is fully usable afterwards.
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.Release()
}

// Unpaired Release is a programming error, not silent corruption.
func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGate(2, 2).Release()
}

// Hammer the gate from many goroutines under -race: every admission is
// eventually released, rejections only happen beyond slots+queue, and the
// final state is idle.
func TestGateConcurrentStress(t *testing.T) {
	g := NewGate(3, 2)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := g.Acquire(context.Background()); err == nil {
					g.Release()
				} else if !errors.Is(err, ErrSaturated) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("gate not idle after stress: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
}
