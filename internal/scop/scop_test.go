package scop

import (
	"strings"
	"testing"

	"polyufc/internal/frontend"
	"polyufc/internal/ir"
	"polyufc/internal/pluto"
)

const src = `
param N = 20
array A[N][N] : f64
array B[N][N] : f64
array C[N][N] : f64
for i = 0 to N-1 {
  for j = 0 to N-1 {
    for k = 0 to N-1 {
      C[i][j] += A[i][k] * B[k][j];
    }
  }
}
`

func exportGemm(t *testing.T) (*SCoP, *ir.Nest) {
	t.Helper()
	mod := mustParse(t, "gemm", src)
	nest := mod.Funcs[0].Ops[0].(*ir.Nest)
	sc, err := Export(nest)
	if err != nil {
		t.Fatal(err)
	}
	return sc, nest
}

func TestExportStructure(t *testing.T) {
	sc, _ := exportGemm(t)
	if len(sc.Statements) != 1 {
		t.Fatalf("statements = %d", len(sc.Statements))
	}
	st := sc.Statements[0]
	if len(st.Iterators) != 3 {
		t.Fatalf("iterators = %v", st.Iterators)
	}
	// 3 loops, one lower + one upper bound each.
	if len(st.Domain.Rows) != 6 {
		t.Fatalf("domain rows = %d", len(st.Domain.Rows))
	}
	// 2d+1 schedule: 7 rows for d=3.
	if len(st.Schedule) != 7 {
		t.Fatalf("schedule rows = %d", len(st.Schedule))
	}
	// 4 accesses (A, B, C read, C write).
	if len(st.Accesses) != 4 {
		t.Fatalf("accesses = %d", len(st.Accesses))
	}
	writes := 0
	for _, a := range st.Accesses {
		if a.Write {
			writes++
		}
	}
	if writes != 1 {
		t.Fatalf("writes = %d", writes)
	}
	if len(sc.Arrays) != 3 {
		t.Fatalf("arrays = %d", len(sc.Arrays))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sc, _ := exportGemm(t)
	data, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"iterators\"") {
		t.Fatal("JSON missing fields")
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != sc.Name || len(back.Statements) != len(sc.Statements) {
		t.Fatal("round trip lost structure")
	}
	if back.Statements[0].Flops != 2 {
		t.Fatalf("flops = %d", back.Statements[0].Flops)
	}
}

func TestDomainSetCardinalityPreserved(t *testing.T) {
	sc, nest := exportGemm(t)
	want, err := nest.TripCount()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Statements[0].DomainSet().CountInt(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reconstructed domain has %d points, want %d", got, want)
	}
}

func TestExportTiledNest(t *testing.T) {
	mod := mustParse(t, "gemm", src)
	nest := mod.Funcs[0].Ops[0].(*ir.Nest)
	tiled, err := pluto.TileNest(nest, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Export(tiled)
	if err != nil {
		t.Fatal(err)
	}
	st := sc.Statements[0]
	if len(st.Iterators) != 6 {
		t.Fatalf("tiled iterators = %v", st.Iterators)
	}
	want, _ := tiled.TripCount()
	got, err := st.DomainSet().CountInt(1 << 22)
	if err != nil || got != want {
		t.Fatalf("tiled domain points = %d (%v), want %d", got, err, want)
	}
}

func TestExportEmptyNestFails(t *testing.T) {
	if _, err := Export(&ir.Nest{Label: "empty"}); err == nil {
		t.Fatal("expected error for empty nest")
	}
}

// mustParse parses a known-good kernel source.
func mustParse(t *testing.T, name, src string) *ir.Module {
	t.Helper()
	mod, err := frontend.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}
