// Package scop exports affine nests to an OpenSCoP-style polyhedral
// exchange format (Bastoul 2011) — the representation the paper converts
// kernels into for analysis (Fig. 3 stage 2). The format is JSON-encoded:
// per-statement iteration-domain constraint matrices, 2d+1 schedules, and
// access relations, exactly the payload polyhedral tools exchange.
package scop

import (
	"encoding/json"
	"fmt"

	"polyufc/internal/ir"
	"polyufc/internal/isl"
)

// Matrix is a constraint matrix in OpenSCoP layout: each row is
// [eq/ineq flag, coefficients..., constant]; flag 0 means equality,
// 1 means >= 0.
type Matrix struct {
	Rows [][]int64 `json:"rows"`
	// Cols documents the column meaning: iterators then constant.
	Cols []string `json:"cols"`
}

// AccessRel is one access relation of a statement.
type AccessRel struct {
	Array string `json:"array"`
	Write bool   `json:"write"`
	// Index rows give each array subscript as coefficients over the
	// statement's iterators plus a constant.
	Index [][]int64 `json:"index"`
}

// Statement is one SCoP statement.
type Statement struct {
	Name      string   `json:"name"`
	Iterators []string `json:"iterators"`
	Domain    Matrix   `json:"domain"`
	// Schedule is the 2d+1 scattering vector: syntactic positions
	// interleaved with iterator levels, encoded as rows mapping output
	// dims to [iterators..., const].
	Schedule [][]int64   `json:"schedule"`
	Accesses []AccessRel `json:"accesses"`
	Flops    int64       `json:"flops"`
}

// SCoP is one static control part: an exported affine nest.
type SCoP struct {
	Name       string      `json:"name"`
	Arrays     []ArrayDecl `json:"arrays"`
	Statements []Statement `json:"statements"`
}

// ArrayDecl describes an array of the SCoP.
type ArrayDecl struct {
	Name     string  `json:"name"`
	ElemSize int64   `json:"elem_size"`
	Dims     []int64 `json:"dims"`
}

// Export converts a nest into its SCoP form.
func Export(nest *ir.Nest) (*SCoP, error) {
	sc := &SCoP{Name: nest.Label}
	for _, a := range nest.Operands() {
		sc.Arrays = append(sc.Arrays, ArrayDecl{Name: a.Name, ElemSize: a.ElemSize, Dims: a.Dims})
	}
	for _, si := range nest.Statements() {
		st, err := exportStatement(si)
		if err != nil {
			return nil, fmt.Errorf("scop: statement %s: %w", si.Stmt.Name, err)
		}
		sc.Statements = append(sc.Statements, st)
	}
	if len(sc.Statements) == 0 {
		return nil, fmt.Errorf("scop: nest %s has no statements", nest.Label)
	}
	return sc, nil
}

func exportStatement(si ir.StatementInfo) (Statement, error) {
	ivs := si.IVNames()
	st := Statement{
		Name:      si.Stmt.Name,
		Iterators: ivs,
		Flops:     si.Stmt.Flops,
	}
	// Domain matrix from the isl constraints.
	st.Domain.Cols = append(append([]string(nil), ivs...), "1")
	for _, b := range si.Domain.Basics {
		for _, cv := range b.Constraints() {
			flag := int64(1)
			if cv.Kind == isl.EQ {
				flag = 0
			}
			row := make([]int64, 0, len(ivs)+2)
			row = append(row, flag)
			row = append(row, cv.Coef[:len(ivs)]...)
			row = append(row, cv.Const)
			st.Domain.Rows = append(st.Domain.Rows, row)
		}
	}
	// 2d+1 schedule: [pos0, iv0, pos1, iv1, ..., posd], each row over
	// [iterators..., const].
	width := len(ivs) + 1
	for level := 0; level <= len(ivs); level++ {
		pos := int64(0)
		if level < len(si.Position) {
			pos = int64(si.Position[level])
		}
		posRow := make([]int64, width)
		posRow[width-1] = pos
		st.Schedule = append(st.Schedule, posRow)
		if level < len(ivs) {
			ivRow := make([]int64, width)
			ivRow[level] = 1
			st.Schedule = append(st.Schedule, ivRow)
		}
	}
	// Access relations.
	for _, acc := range si.Stmt.Accesses {
		rel := AccessRel{Array: acc.Array.Name, Write: acc.Write}
		for _, e := range acc.Index {
			row := make([]int64, width)
			for iv, c := range e.Coef {
				idx := indexOf(ivs, iv)
				if idx < 0 {
					return st, fmt.Errorf("access references unknown iterator %q", iv)
				}
				row[idx] = c
			}
			row[width-1] = e.Const
			rel.Index = append(rel.Index, row)
		}
		st.Accesses = append(st.Accesses, rel)
	}
	return st, nil
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}

// MarshalJSON renders the SCoP as indented JSON.
func (s *SCoP) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Unmarshal parses an exported SCoP.
func Unmarshal(data []byte) (*SCoP, error) {
	var s SCoP
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// DomainSet rebuilds the isl iteration domain of an exported statement —
// the consumer-side entry point for polyhedral tools reading the SCoP.
func (st *Statement) DomainSet() isl.Set {
	sp := isl.NewSetSpace(nil, st.Iterators)
	b := isl.Universe(sp)
	n := len(st.Iterators)
	for _, row := range st.Domain.Rows {
		e := sp.ConstExpr(row[n+1])
		for i := 0; i < n; i++ {
			e.VarCoef[i] = row[1+i]
		}
		if row[0] == 0 {
			b.AddEQ(e)
		} else {
			b.AddGE(e)
		}
	}
	return isl.FromBasic(b)
}
