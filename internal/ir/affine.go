package ir

import (
	"fmt"
	"sort"
	"strings"

	"polyufc/internal/isl"
)

// AffExpr is an affine expression over loop induction variables:
// sum(Coef[iv] * iv) + Const. Coefficients for absent IVs are zero.
type AffExpr struct {
	Coef  map[string]int64
	Const int64
}

// AffConst returns the constant affine expression c.
func AffConst(c int64) AffExpr { return AffExpr{Const: c} }

// AffVar returns the affine expression consisting of one IV.
func AffVar(iv string) AffExpr { return AffExpr{Coef: map[string]int64{iv: 1}} }

// AffTerm returns c * iv.
func AffTerm(c int64, iv string) AffExpr { return AffExpr{Coef: map[string]int64{iv: c}} }

// Add returns e + f.
func (e AffExpr) Add(f AffExpr) AffExpr {
	g := AffExpr{Coef: map[string]int64{}, Const: e.Const + f.Const}
	for k, v := range e.Coef {
		g.Coef[k] += v
	}
	for k, v := range f.Coef {
		g.Coef[k] += v
	}
	for k, v := range g.Coef {
		if v == 0 {
			delete(g.Coef, k)
		}
	}
	return g
}

// AddConst returns e + c.
func (e AffExpr) AddConst(c int64) AffExpr { return e.Add(AffConst(c)) }

// Scale returns c * e.
func (e AffExpr) Scale(c int64) AffExpr {
	g := AffExpr{Coef: map[string]int64{}, Const: e.Const * c}
	if c != 0 {
		for k, v := range e.Coef {
			g.Coef[k] = v * c
		}
	}
	return g
}

// Eval evaluates e under the IV assignment env.
func (e AffExpr) Eval(env map[string]int64) int64 {
	v := e.Const
	for k, c := range e.Coef {
		v += c * env[k]
	}
	return v
}

// IVs returns the induction variables appearing in e, sorted.
func (e AffExpr) IVs() []string {
	out := make([]string, 0, len(e.Coef))
	for k := range e.Coef {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (e AffExpr) String() string {
	var parts []string
	for _, iv := range e.IVs() {
		c := e.Coef[iv]
		switch c {
		case 1:
			parts = append(parts, iv)
		case -1:
			parts = append(parts, "-"+iv)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, iv))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprint(e.Const))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += " - " + p[1:]
		} else {
			out += " + " + p
		}
	}
	return out
}

// Node is an element of an affine loop body: either a nested *Loop or a
// *Statement.
type Node interface{ affineNode() }

// Bound is one candidate loop bound: for lower bounds it denotes
// ceil(Expr/Div), for upper bounds floor(Expr/Div). Div is 1 for plain
// affine bounds; tiling introduces Div = tile size (MLIR's affine_map
// floordiv bounds).
type Bound struct {
	Expr AffExpr
	Div  int64
}

// BExpr wraps a plain affine expression as a Bound with divisor 1.
func BExpr(e AffExpr) Bound { return Bound{Expr: e, Div: 1} }

// BDiv builds the bound Expr/Div (floor for upper, ceil for lower bounds).
func BDiv(e AffExpr, div int64) Bound {
	if div <= 0 {
		panic("ir: bound divisor must be positive")
	}
	return Bound{Expr: e, Div: div}
}

func (b Bound) String() string {
	if b.Div == 1 {
		return b.Expr.String()
	}
	return fmt.Sprintf("(%s) floordiv %d", b.Expr, b.Div)
}

// Loop is an affine for loop with unit step; the lower bound is the max of
// Lo, the (inclusive) upper bound is the min of Hi.
type Loop struct {
	IV       string
	Lo, Hi   []Bound // Lo: max of (ceil); Hi: min of (floor, inclusive)
	Parallel bool
	Body     []Node
}

func (*Loop) affineNode() {}

// SimpleLoop builds a loop with single plain bounds [lo, hi] inclusive.
func SimpleLoop(iv string, lo, hi AffExpr, body ...Node) *Loop {
	return &Loop{IV: iv, Lo: []Bound{BExpr(lo)}, Hi: []Bound{BExpr(hi)}, Body: body}
}

// Access is one memory reference of a statement.
type Access struct {
	Array *Array
	Write bool
	Index []AffExpr // one affine expression per array dimension
}

// Statement is a polyhedral statement: the innermost computation executed
// at each point of its iteration domain.
type Statement struct {
	Name     string
	Accesses []Access
	// Flops is the number of arithmetic operations per statement instance
	// (the paper's unitary model: every arith op counts 1).
	Flops int64
}

func (*Statement) affineNode() {}

// CapNode places a polyufc.set_uncore_cap inside an affine body (used by
// the affine-granularity capping study).
type CapNode struct {
	Cap *SetUncoreCap
}

func (*CapNode) affineNode() {}

// Nest is a top-level affine loop nest; it is the affine-dialect Op.
type Nest struct {
	Label  string
	origin string
	Root   *Loop
}

// Dialect implements Op.
func (n *Nest) Dialect() Dialect { return DialectAffine }

// OpName implements Op.
func (n *Nest) OpName() string { return "affine.for" }

// Origin implements Op.
func (n *Nest) Origin() string { return n.origin }

// SetOrigin records the higher-level op this nest was lowered from.
func (n *Nest) SetOrigin(o string) { n.origin = o }

// Operands implements Op: the distinct arrays accessed in the nest.
func (n *Nest) Operands() []*Array {
	seen := map[*Array]bool{}
	var out []*Array
	n.WalkStatements(func(s *Statement, _ []*Loop) {
		for _, a := range s.Accesses {
			if !seen[a.Array] {
				seen[a.Array] = true
				out = append(out, a.Array)
			}
		}
	})
	return out
}

// WalkStatements visits every statement with its enclosing loop stack
// (outermost first).
func (n *Nest) WalkStatements(visit func(s *Statement, loops []*Loop)) {
	var rec func(l *Loop, stack []*Loop)
	rec = func(l *Loop, stack []*Loop) {
		stack = append(stack, l)
		for _, node := range l.Body {
			switch x := node.(type) {
			case *Loop:
				rec(x, stack)
			case *Statement:
				visit(x, stack)
			}
		}
	}
	if n.Root != nil {
		rec(n.Root, nil)
	}
}

// WalkLoops visits every loop in the nest, outermost first.
func (n *Nest) WalkLoops(visit func(l *Loop, depth int)) {
	var rec func(l *Loop, depth int)
	rec = func(l *Loop, depth int) {
		visit(l, depth)
		for _, node := range l.Body {
			if sub, ok := node.(*Loop); ok {
				rec(sub, depth+1)
			}
		}
	}
	if n.Root != nil {
		rec(n.Root, 0)
	}
}

// StatementInfo bundles a statement with its polyhedral context.
type StatementInfo struct {
	Stmt *Statement
	// Loops is the enclosing loop stack, outermost first.
	Loops []*Loop
	// Domain is the iteration domain over the loop IVs (outermost first).
	Domain isl.Set
	// Position is the 2d+1 schedule prefix: syntactic positions
	// interleaved with IV levels; used for lexicographic comparisons.
	Position []int
}

// IVNames returns the statement's loop IVs, outermost first.
func (si StatementInfo) IVNames() []string {
	out := make([]string, len(si.Loops))
	for i, l := range si.Loops {
		out[i] = l.IV
	}
	return out
}

// Statements extracts every statement of the nest with its iteration domain
// and schedule position.
func (n *Nest) Statements() []StatementInfo {
	var out []StatementInfo
	var rec func(l *Loop, stack []*Loop, pos []int)
	rec = func(l *Loop, stack []*Loop, pos []int) {
		stack = append(stack, l)
		childIdx := 0
		for _, node := range l.Body {
			switch x := node.(type) {
			case *Loop:
				rec(x, stack, append(append([]int(nil), pos...), childIdx))
				childIdx++
			case *Statement:
				si := StatementInfo{
					Stmt:     x,
					Loops:    append([]*Loop(nil), stack...),
					Position: append(append([]int(nil), pos...), childIdx),
				}
				si.Domain = domainOf(stack)
				out = append(out, si)
				childIdx++
			}
		}
	}
	if n.Root != nil {
		rec(n.Root, nil, nil)
	}
	return out
}

// domainOf builds the isl iteration domain for a loop stack.
func domainOf(stack []*Loop) isl.Set {
	ivs := make([]string, len(stack))
	for i, l := range stack {
		ivs[i] = l.IV
	}
	sp := isl.NewSetSpace(nil, ivs)
	b := isl.Universe(sp)
	toLin := func(e AffExpr) isl.LinExpr {
		le := sp.ConstExpr(e.Const)
		for iv, c := range e.Coef {
			idx := sp.VarIndex(iv)
			if idx < 0 {
				panic(fmt.Sprintf("ir: bound references unknown IV %q", iv))
			}
			le.VarCoef[idx] += c
		}
		return le
	}
	for i, l := range stack {
		v := sp.VarExpr(i)
		for _, lo := range l.Lo {
			// iv >= ceil(e/d)  <=>  d*iv >= e  (d > 0).
			b.AddGE(v.Scale(lo.Div).Sub(toLin(lo.Expr)))
		}
		for _, hi := range l.Hi {
			// iv <= floor(e/d)  <=>  d*iv <= e.
			b.AddGE(toLin(hi.Expr).Sub(v.Scale(hi.Div)))
		}
	}
	return isl.FromBasic(b)
}

// AccessMap builds the isl relation {iters -> array indices} for one access
// of a statement with the given IV list.
func AccessMap(ivs []string, acc Access) isl.Map {
	inSp := isl.NewSetSpace(nil, ivs)
	outs := make([]isl.LinExpr, len(acc.Index))
	outNames := make([]string, len(acc.Index))
	for d, e := range acc.Index {
		le := inSp.ConstExpr(e.Const)
		for iv, c := range e.Coef {
			idx := inSp.VarIndex(iv)
			if idx < 0 {
				panic(fmt.Sprintf("ir: access references unknown IV %q", iv))
			}
			le.VarCoef[idx] += c
		}
		outs[d] = le
		outNames[d] = fmt.Sprintf("d%d", d)
	}
	return isl.MapFromExprs(nil, ivs, outNames, outs)
}

// TripCount returns the total number of statement instances across the
// nest (the sum of all statement domain cardinalities).
func (n *Nest) TripCount() (int64, error) {
	var total int64
	for _, si := range n.Statements() {
		c, err := si.Domain.CountInt(1 << 24)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// Flops returns the total arithmetic operation count of the nest
// (sum over statements of flops-per-instance times domain size).
func (n *Nest) Flops() (int64, error) {
	var total int64
	for _, si := range n.Statements() {
		c, err := si.Domain.CountInt(1 << 24)
		if err != nil {
			return 0, err
		}
		total += c * si.Stmt.Flops
	}
	return total, nil
}
