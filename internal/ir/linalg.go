package ir

// linalgBase provides shared Op plumbing for linalg-dialect operations.
type linalgBase struct {
	name   string
	origin string
	args   []*Array
}

func (l *linalgBase) Dialect() Dialect   { return DialectLinalg }
func (l *linalgBase) OpName() string     { return "linalg." + l.name }
func (l *linalgBase) Operands() []*Array { return l.args }
func (l *linalgBase) Origin() string     { return l.origin }

// SetOrigin records the higher-level op this op was lowered from.
func (l *linalgBase) SetOrigin(o string) { l.origin = o }

// LinalgMatmul is linalg.matmul: Out[M,N] += A[M,K] * B[K,N].
type LinalgMatmul struct {
	linalgBase
	A, B, Out *Array
}

// NewLinalgMatmul builds a linalg.matmul.
func NewLinalgMatmul(a, b, out *Array) *LinalgMatmul {
	return &LinalgMatmul{
		linalgBase: linalgBase{name: "matmul", args: []*Array{a, b, out}},
		A:          a, B: b, Out: out,
	}
}

// LinalgBatchMatmul is linalg.batch_matmul with an arbitrary number of
// leading batch dimensions: Out[..., M, N] += A[..., M, K] * B[..., K, N];
// with TransB set, B is [..., N, K] and is read transposed.
type LinalgBatchMatmul struct {
	linalgBase
	A, B, Out *Array
	TransB    bool
}

// NewLinalgBatchMatmul builds a linalg.batch_matmul.
func NewLinalgBatchMatmul(a, b, out *Array, transB bool) *LinalgBatchMatmul {
	name := "batch_matmul"
	if transB {
		name = "batch_matmul_transpose_b"
	}
	return &LinalgBatchMatmul{
		linalgBase: linalgBase{name: name, args: []*Array{a, b, out}},
		A:          a, B: b, Out: out, TransB: transB,
	}
}

// LinalgConv2D is linalg.conv_2d_nchw_fchw.
type LinalgConv2D struct {
	linalgBase
	Input, Filter, Out *Array
	StrideH, StrideW   int64
}

// NewLinalgConv2D builds a linalg.conv_2d_nchw_fchw.
func NewLinalgConv2D(in, flt, out *Array, sh, sw int64) *LinalgConv2D {
	return &LinalgConv2D{
		linalgBase: linalgBase{name: "conv_2d_nchw_fchw", args: []*Array{in, flt, out}},
		Input:      in, Filter: flt, Out: out, StrideH: sh, StrideW: sw,
	}
}

// UnaryKind enumerates element-wise unary operations.
type UnaryKind int

// Unary kinds.
const (
	UnaryExp UnaryKind = iota
	UnaryRelu
	UnaryScale // multiply by a constant
	UnaryCopy
	UnaryRecip
)

func (k UnaryKind) String() string {
	switch k {
	case UnaryExp:
		return "exp"
	case UnaryRelu:
		return "relu"
	case UnaryScale:
		return "scale"
	case UnaryCopy:
		return "copy"
	case UnaryRecip:
		return "recip"
	}
	return "unary?"
}

// LinalgElemUnary is an element-wise unary linalg.generic.
type LinalgElemUnary struct {
	linalgBase
	Kind    UnaryKind
	Alpha   float64 // used by UnaryScale
	In, Out *Array
}

// NewLinalgElemUnary builds an element-wise unary op over same-shape arrays.
func NewLinalgElemUnary(kind UnaryKind, in, out *Array, alpha float64) *LinalgElemUnary {
	return &LinalgElemUnary{
		linalgBase: linalgBase{name: "elemwise_" + kind.String(), args: []*Array{in, out}},
		Kind:       kind, Alpha: alpha, In: in, Out: out,
	}
}

// BinaryKind enumerates element-wise binary operations.
type BinaryKind int

// Binary kinds.
const (
	BinAdd BinaryKind = iota
	BinSub
	BinMul
	BinDiv
)

func (k BinaryKind) String() string {
	switch k {
	case BinAdd:
		return "add"
	case BinSub:
		return "sub"
	case BinMul:
		return "mul"
	case BinDiv:
		return "div"
	}
	return "bin?"
}

// LinalgElemBinary is an element-wise binary linalg.generic. With
// BroadcastB set, B has one fewer dimension than A and is broadcast along
// A's last dimension (the softmax normalization pattern).
type LinalgElemBinary struct {
	linalgBase
	Kind       BinaryKind
	A, B, Out  *Array
	BroadcastB bool
}

// NewLinalgElemBinary builds an element-wise binary op.
func NewLinalgElemBinary(kind BinaryKind, a, b, out *Array, broadcastB bool) *LinalgElemBinary {
	return &LinalgElemBinary{
		linalgBase: linalgBase{name: "elemwise_" + kind.String(), args: []*Array{a, b, out}},
		Kind:       kind, A: a, B: b, Out: out, BroadcastB: broadcastB,
	}
}

// ReduceKind enumerates row reductions.
type ReduceKind int

// Reduce kinds.
const (
	ReduceSum ReduceKind = iota
	ReduceMax
)

func (k ReduceKind) String() string {
	if k == ReduceMax {
		return "max"
	}
	return "sum"
}

// LinalgRowReduce reduces the last dimension of In into Out (which has one
// fewer dimension).
type LinalgRowReduce struct {
	linalgBase
	Kind    ReduceKind
	In, Out *Array
}

// NewLinalgRowReduce builds a last-dimension reduction.
func NewLinalgRowReduce(kind ReduceKind, in, out *Array) *LinalgRowReduce {
	return &LinalgRowReduce{
		linalgBase: linalgBase{name: "reduce_" + kind.String(), args: []*Array{in, out}},
		Kind:       kind, In: in, Out: out,
	}
}

// LinalgFill initializes Out with a constant.
type LinalgFill struct {
	linalgBase
	Out   *Array
	Value float64
}

// NewLinalgFill builds a linalg.fill.
func NewLinalgFill(out *Array, v float64) *LinalgFill {
	return &LinalgFill{
		linalgBase: linalgBase{name: "fill", args: []*Array{out}},
		Out:        out, Value: v,
	}
}
