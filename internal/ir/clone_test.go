package ir

import (
	"reflect"
	"testing"
)

// buildCloneFixture assembles a module exercising every dialect: torch
// ops, linalg ops, an affine nest with nested loops, bounds with divisors,
// a cap node, and shared arrays.
func buildCloneFixture() *Module {
	a := NewArray("A", 8, 16, 16)
	b := NewArray("B", 8, 16, 16)
	o := NewArray("O", 8, 16, 16)
	mod, f := NewModule("fixture")

	mm := NewTorchMatMul(a, b, o)
	sm := NewTorchSoftmax(o, o)
	lin := NewLinalgMatmul(a, b, o)
	lin.SetOrigin("torch.matmul")

	s := &Statement{Name: "S0", Flops: 2, Accesses: []Access{
		{Array: a, Index: []AffExpr{AffVar("i"), AffVar("k")}},
		{Array: b, Index: []AffExpr{AffVar("k"), AffVar("j")}},
		{Array: o, Write: true, Index: []AffExpr{AffVar("i"), AffVar("j")}},
	}}
	inner := &Loop{IV: "k", Lo: []Bound{BExpr(AffConst(0))},
		Hi: []Bound{BDiv(AffVar("i"), 4), BExpr(AffConst(15))}, Body: []Node{s}}
	mid := SimpleLoop("j", AffConst(0), AffConst(15), inner,
		&CapNode{Cap: &SetUncoreCap{GHz: 1.2, Level: DialectAffine, From: "S0"}})
	root := SimpleLoop("i", AffConst(0), AffConst(15), mid)
	root.Parallel = true
	nest := &Nest{Label: "matmul0", Root: root}
	nest.SetOrigin("torch.matmul/linalg.matmul")

	f.Ops = []Op{mm, sm, lin, &SetUncoreCap{GHz: 2.0, Level: DialectLinalg, From: "mm"}, nest}
	return mod
}

func TestCloneDeepEqual(t *testing.T) {
	m := buildCloneFixture()
	c := m.Clone()
	if !reflect.DeepEqual(m, c) {
		t.Fatal("clone is not deep-equal to the original")
	}
}

func TestCloneSharesNothingMutable(t *testing.T) {
	m := buildCloneFixture()
	c := m.Clone()
	if m.Funcs[0] == c.Funcs[0] {
		t.Fatal("funcs shared")
	}
	for i := range m.Funcs[0].Ops {
		if m.Funcs[0].Ops[i] == c.Funcs[0].Ops[i] {
			t.Fatalf("op %d shared", i)
		}
	}
	// Mutating the clone's nest must not reach the original.
	var origNest, cloneNest *Nest
	for _, op := range m.Funcs[0].Ops {
		if n, ok := op.(*Nest); ok {
			origNest = n
		}
	}
	for _, op := range c.Funcs[0].Ops {
		if n, ok := op.(*Nest); ok {
			cloneNest = n
		}
	}
	cloneNest.Root.Hi[0].Expr.Const = 999
	cloneNest.Root.IV = "zz"
	var st *Statement
	cloneNest.WalkStatements(func(s *Statement, _ []*Loop) { st = s })
	st.Accesses[0].Array.Dims[0] = 12345
	st.Accesses[0].Index[0].Coef["i"] = 7

	if origNest.Root.Hi[0].Expr.Const == 999 || origNest.Root.IV == "zz" {
		t.Fatal("loop state shared with clone")
	}
	var ost *Statement
	origNest.WalkStatements(func(s *Statement, _ []*Loop) { ost = s })
	if ost.Accesses[0].Array.Dims[0] == 12345 {
		t.Fatal("arrays shared with clone")
	}
	if ost.Accesses[0].Index[0].Coef["i"] == 7 {
		t.Fatal("affine coefficient maps shared with clone")
	}
}

func TestCloneRetainsArrayIdentity(t *testing.T) {
	m := buildCloneFixture()
	c := m.Clone()
	// The torch.matmul's A and the nest statement's first access alias the
	// same array in the original; the clone must preserve that aliasing.
	mm := c.Funcs[0].Ops[0].(*TorchMatMul)
	var nest *Nest
	for _, op := range c.Funcs[0].Ops {
		if n, ok := op.(*Nest); ok {
			nest = n
		}
	}
	var st *Statement
	nest.WalkStatements(func(s *Statement, _ []*Loop) { st = s })
	if mm.A != st.Accesses[0].Array {
		t.Fatal("array aliasing lost in clone")
	}
	if mm.A != mm.Operands()[0] {
		t.Fatal("op struct fields and Operands() diverged in clone")
	}
	// Distinct originals stay distinct.
	if mm.A == mm.B {
		t.Fatal("distinct arrays merged")
	}
}

func TestCloneNilAndEmpty(t *testing.T) {
	var m *Module
	if m.Clone() != nil {
		t.Fatal("nil module clone")
	}
	empty, _ := NewModule("empty")
	c := empty.Clone()
	if !reflect.DeepEqual(empty, c) {
		t.Fatal("empty module clone differs")
	}
	var n *Nest
	if n.Clone() != nil {
		t.Fatal("nil nest clone")
	}
}
