package ir

import (
	"context"
	"time"

	"polyufc/internal/pipeline"
)

// Pass is a module transformation or analysis.
type Pass interface {
	// Name identifies the pass in timings and diagnostics.
	Name() string
	// Run transforms the module in place.
	Run(m *Module) error
}

// PassFunc adapts a function to the Pass interface.
type PassFunc struct {
	PassName string
	Fn       func(m *Module) error
}

// Name implements Pass.
func (p PassFunc) Name() string { return p.PassName }

// Run implements Pass.
func (p PassFunc) Run(m *Module) error { return p.Fn(m) }

// PassTiming records how long one pass took.
type PassTiming struct {
	Pass     string
	Duration time.Duration
}

// PassManager runs a pipeline of passes and records per-pass timings (the
// paper's Table IV compile-time breakdown). It is a thin declaration
// layer over internal/pipeline, which supplies the shared stage runner:
// context checks, per-pass panic recovery and the timing events.
type PassManager struct {
	passes  []Pass
	Timings []PassTiming
}

// AddPass appends a pass to the pipeline.
func (pm *PassManager) AddPass(p Pass) { pm.passes = append(pm.passes, p) }

// Run executes the pipeline on the module. The failing pass's timing is
// still recorded.
func (pm *PassManager) Run(m *Module) error {
	stages := make([]pipeline.Stage[*Module], len(pm.passes))
	for i, p := range pm.passes {
		p := p
		stages[i] = pipeline.Stage[*Module]{
			Name: p.Name(),
			Run:  func(_ context.Context, mod *Module) error { return p.Run(mod) },
		}
	}
	events, err := pipeline.New("pass", stages...).Run(context.Background(), m, pipeline.RunOptions{})
	for _, e := range events {
		pm.Timings = append(pm.Timings, PassTiming{Pass: e.Stage, Duration: e.Duration})
	}
	return err
}

// RewritePattern is a local rewrite applied greedily over a function's op
// list. Match inspects the ops at index i and returns how many ops the
// rewrite consumes (0 = no match); Rewrite returns the replacement ops.
type RewritePattern interface {
	// PatternName identifies the pattern.
	PatternName() string
	// Match returns the number of ops consumed starting at i, or 0.
	Match(ops []Op, i int) int
	// Rewrite returns the ops replacing the matched window.
	Rewrite(ops []Op, i, n int) []Op
}

// ApplyPatterns runs the patterns greedily to a fixpoint over each
// function's op list, returning the number of rewrites applied.
func ApplyPatterns(m *Module, patterns ...RewritePattern) int {
	applied := 0
	for _, f := range m.Funcs {
		for {
			changed := false
			for i := 0; i < len(f.Ops); i++ {
				for _, p := range patterns {
					n := p.Match(f.Ops, i)
					if n <= 0 {
						continue
					}
					repl := p.Rewrite(f.Ops, i, n)
					next := make([]Op, 0, len(f.Ops)-n+len(repl))
					next = append(next, f.Ops[:i]...)
					next = append(next, repl...)
					next = append(next, f.Ops[i+n:]...)
					f.Ops = next
					applied++
					changed = true
					break
				}
				if changed {
					break
				}
			}
			if !changed {
				break
			}
		}
	}
	return applied
}

// RedundantCapPattern removes a set_uncore_cap immediately followed by
// another set_uncore_cap (the first has no effect), and collapses
// consecutive caps with equal frequency.
type RedundantCapPattern struct{}

// PatternName implements RewritePattern.
func (RedundantCapPattern) PatternName() string { return "remove-redundant-caps" }

// Match implements RewritePattern.
func (RedundantCapPattern) Match(ops []Op, i int) int {
	c1, ok := ops[i].(*SetUncoreCap)
	if !ok || i+1 >= len(ops) {
		return 0
	}
	if _, ok := ops[i+1].(*SetUncoreCap); ok {
		return 1 // drop the shadowed cap
	}
	_ = c1
	return 0
}

// Rewrite implements RewritePattern.
func (RedundantCapPattern) Rewrite(ops []Op, i, n int) []Op { return nil }

// EqualCapPattern removes a cap whose frequency equals the previous
// still-active cap (no frequency change, so the runtime call is redundant).
type EqualCapPattern struct{}

// PatternName implements RewritePattern.
func (EqualCapPattern) PatternName() string { return "remove-equal-caps" }

// Match implements RewritePattern.
func (EqualCapPattern) Match(ops []Op, i int) int {
	cur, ok := ops[i].(*SetUncoreCap)
	if !ok {
		return 0
	}
	// Find the previous cap; if it has the same frequency, this one is a
	// no-op.
	for j := i - 1; j >= 0; j-- {
		if prev, ok := ops[j].(*SetUncoreCap); ok {
			if prev.GHz == cur.GHz {
				return 1
			}
			return 0
		}
	}
	return 0
}

// Rewrite implements RewritePattern.
func (EqualCapPattern) Rewrite(ops []Op, i, n int) []Op { return nil }
