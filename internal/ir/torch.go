package ir

import "fmt"

// torchBase provides the shared Op plumbing for torch-dialect operations.
type torchBase struct {
	name   string
	origin string
	args   []*Array
}

func (t *torchBase) Dialect() Dialect   { return DialectTorch }
func (t *torchBase) OpName() string     { return "torch." + t.name }
func (t *torchBase) Operands() []*Array { return t.args }
func (t *torchBase) Origin() string     { return t.origin }

// TorchMatMul is torch.matmul: Out[M,N] = A[M,K] x B[K,N]. Batch dims, if
// any, lead the shapes.
type TorchMatMul struct {
	torchBase
	A, B, Out *Array
}

// NewTorchMatMul builds a torch.matmul over 2-D operands.
func NewTorchMatMul(a, b, out *Array) *TorchMatMul {
	return &TorchMatMul{
		torchBase: torchBase{name: "matmul", args: []*Array{a, b, out}},
		A:         a, B: b, Out: out,
	}
}

// TorchConv2D is torch.conv2d with NCHW input and FCHW filter layout.
type TorchConv2D struct {
	torchBase
	Input, Filter, Out *Array
	StrideH, StrideW   int64
}

// NewTorchConv2D builds a torch.conv2d; input is NxCxHxW, filter FxCxKHxKW,
// output NxFxOHxOW with OH = (H-KH)/strideH + 1.
func NewTorchConv2D(input, filter, out *Array, strideH, strideW int64) *TorchConv2D {
	return &TorchConv2D{
		torchBase: torchBase{name: "conv2d", args: []*Array{input, filter, out}},
		Input:     input, Filter: filter, Out: out,
		StrideH: strideH, StrideW: strideW,
	}
}

// TorchSDPA is torch.scaled_dot_product_attention over shapes
// [B, H, S, D] for Q/K/V and output.
type TorchSDPA struct {
	torchBase
	Q, K, V, Out *Array
}

// NewTorchSDPA builds a torch.sdpa op.
func NewTorchSDPA(q, k, v, out *Array) *TorchSDPA {
	return &TorchSDPA{
		torchBase: torchBase{name: "sdpa", args: []*Array{q, k, v, out}},
		Q:         q, K: k, V: v, Out: out,
	}
}

// TorchSoftmax is torch.softmax along the last dimension.
type TorchSoftmax struct {
	torchBase
	In, Out *Array
}

// NewTorchSoftmax builds a torch.softmax op.
func NewTorchSoftmax(in, out *Array) *TorchSoftmax {
	return &TorchSoftmax{
		torchBase: torchBase{name: "softmax", args: []*Array{in, out}},
		In:        in, Out: out,
	}
}

// TorchRelu is torch.relu (element-wise).
type TorchRelu struct {
	torchBase
	In, Out *Array
}

// NewTorchRelu builds a torch.relu op.
func NewTorchRelu(in, out *Array) *TorchRelu {
	return &TorchRelu{
		torchBase: torchBase{name: "relu", args: []*Array{in, out}},
		In:        in, Out: out,
	}
}

// TorchAdd is torch.add (element-wise, same shapes).
type TorchAdd struct {
	torchBase
	A, B, Out *Array
}

// NewTorchAdd builds a torch.add op.
func NewTorchAdd(a, b, out *Array) *TorchAdd {
	return &TorchAdd{
		torchBase: torchBase{name: "add", args: []*Array{a, b, out}},
		A:         a, B: b, Out: out,
	}
}

func torchShape(a *Array) string {
	return fmt.Sprintf("%v", a.Dims)
}
