package ir

import (
	"strings"
	"testing"
)

// TestPrintGolden checks the printed form of a representative module
// against an exact golden text, locking the textual format.
func TestPrintGolden(t *testing.T) {
	A := NewArray("A", 8, 4, 4)
	B := NewArray("B", 8, 4, 4)
	stmt := &Statement{Name: "S0", Flops: 2}
	i, j := AffVar("i"), AffVar("j")
	stmt.Accesses = []Access{
		{Array: A, Index: []AffExpr{i, j}},
		{Array: B, Write: true, Index: []AffExpr{j, i.Scale(2).AddConst(-1)}},
	}
	jl := SimpleLoop("j", AffConst(0), i, stmt)
	jl.Parallel = false
	il := SimpleLoop("i", AffConst(0), AffConst(3), jl)
	il.Parallel = true
	nest := &Nest{Label: "tri", Root: il}
	nest.SetOrigin("torch.test/linalg.generic")

	mod, f := NewModule("golden")
	f.Ops = []Op{&SetUncoreCap{GHz: 1.5, Level: DialectLinalg, From: "tri"}, nest}

	got := mod.Print()
	want := strings.Join([]string{
		"module @golden {",
		"  func.func @golden(%A: memref<4x4xf64>, %B: memref<4x4xf64>) {",
		"    polyufc.set_uncore_cap {ghz = 1.5, for = \"tri\"}",
		"    // affine nest \"tri\" (from torch.test/linalg.generic)",
		"    affine.parallel %i = 0 to 3 {",
		"      affine.for %j = 0 to i {",
		"        %v = affine.load %A[i, j]",
		"        // S0: 2 flops",
		"        affine.store %v, %B[j, 2*i - 1]",
		"      }",
		"    }",
		"  }",
		"}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrintBoundsWithDiv locks the floordiv rendering used by tiled loops.
func TestPrintBoundsWithDiv(t *testing.T) {
	stmt := &Statement{Name: "S", Flops: 0}
	stmt.Accesses = []Access{{Array: NewArray("X", 8, 64), Write: true, Index: []AffExpr{AffVar("t")}}}
	l := &Loop{
		IV:   "t",
		Lo:   []Bound{BExpr(AffConst(0))},
		Hi:   []Bound{BDiv(AffConst(99), 32), BExpr(AffConst(5))},
		Body: []Node{stmt},
	}
	s := printLoop(l)
	if !strings.Contains(s, "min((99) floordiv 32, 5)") {
		t.Fatalf("bound rendering: %q", s)
	}
}
