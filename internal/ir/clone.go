package ir

import "fmt"

// Clone returns a deep copy of the module sharing no mutable state with
// the original: ops, nests, loops, statements, bounds and arrays are all
// copied, and array identity is preserved (two ops referencing the same
// *Array reference the same clone). core.Compile clones its input through
// this before lowering, which keeps Compile pure — the property the
// parallel engine's memo cache relies on.
func (m *Module) Clone() *Module {
	if m == nil {
		return nil
	}
	c := &cloner{arrays: map[*Array]*Array{}}
	out := &Module{Name: m.Name}
	for _, f := range m.Funcs {
		out.Funcs = append(out.Funcs, c.fn(f))
	}
	return out
}

// Clone returns a deep copy of the nest (see Module.Clone).
func (n *Nest) Clone() *Nest {
	return (&cloner{arrays: map[*Array]*Array{}}).nest(n)
}

// cloner tracks array identity across one clone operation.
type cloner struct {
	arrays map[*Array]*Array
}

func (c *cloner) fn(f *Func) *Func {
	out := &Func{Name: f.Name}
	for _, op := range f.Ops {
		out.Ops = append(out.Ops, c.op(op))
	}
	return out
}

func (c *cloner) array(a *Array) *Array {
	if a == nil {
		return nil
	}
	if cp, ok := c.arrays[a]; ok {
		return cp
	}
	cp := &Array{Name: a.Name, ElemSize: a.ElemSize}
	if a.Dims != nil {
		cp.Dims = append([]int64(nil), a.Dims...)
	}
	c.arrays[a] = cp
	return cp
}

func (c *cloner) arrays2(as []*Array) []*Array {
	if as == nil {
		return nil
	}
	out := make([]*Array, len(as))
	for i, a := range as {
		out[i] = c.array(a)
	}
	return out
}

func (c *cloner) torchBase(b torchBase) torchBase {
	return torchBase{name: b.name, origin: b.origin, args: c.arrays2(b.args)}
}

func (c *cloner) linalgBase(b linalgBase) linalgBase {
	return linalgBase{name: b.name, origin: b.origin, args: c.arrays2(b.args)}
}

func (c *cloner) op(op Op) Op {
	switch x := op.(type) {
	case *SetUncoreCap:
		cp := *x
		return &cp

	case *Nest:
		return c.nest(x)

	case *TorchMatMul:
		return &TorchMatMul{torchBase: c.torchBase(x.torchBase),
			A: c.array(x.A), B: c.array(x.B), Out: c.array(x.Out)}
	case *TorchConv2D:
		return &TorchConv2D{torchBase: c.torchBase(x.torchBase),
			Input: c.array(x.Input), Filter: c.array(x.Filter), Out: c.array(x.Out),
			StrideH: x.StrideH, StrideW: x.StrideW}
	case *TorchSDPA:
		return &TorchSDPA{torchBase: c.torchBase(x.torchBase),
			Q: c.array(x.Q), K: c.array(x.K), V: c.array(x.V), Out: c.array(x.Out)}
	case *TorchSoftmax:
		return &TorchSoftmax{torchBase: c.torchBase(x.torchBase),
			In: c.array(x.In), Out: c.array(x.Out)}
	case *TorchRelu:
		return &TorchRelu{torchBase: c.torchBase(x.torchBase),
			In: c.array(x.In), Out: c.array(x.Out)}
	case *TorchAdd:
		return &TorchAdd{torchBase: c.torchBase(x.torchBase),
			A: c.array(x.A), B: c.array(x.B), Out: c.array(x.Out)}

	case *LinalgMatmul:
		return &LinalgMatmul{linalgBase: c.linalgBase(x.linalgBase),
			A: c.array(x.A), B: c.array(x.B), Out: c.array(x.Out)}
	case *LinalgBatchMatmul:
		return &LinalgBatchMatmul{linalgBase: c.linalgBase(x.linalgBase),
			A: c.array(x.A), B: c.array(x.B), Out: c.array(x.Out), TransB: x.TransB}
	case *LinalgConv2D:
		return &LinalgConv2D{linalgBase: c.linalgBase(x.linalgBase),
			Input: c.array(x.Input), Filter: c.array(x.Filter), Out: c.array(x.Out),
			StrideH: x.StrideH, StrideW: x.StrideW}
	case *LinalgElemUnary:
		return &LinalgElemUnary{linalgBase: c.linalgBase(x.linalgBase),
			Kind: x.Kind, Alpha: x.Alpha, In: c.array(x.In), Out: c.array(x.Out)}
	case *LinalgElemBinary:
		return &LinalgElemBinary{linalgBase: c.linalgBase(x.linalgBase),
			Kind: x.Kind, A: c.array(x.A), B: c.array(x.B), Out: c.array(x.Out),
			BroadcastB: x.BroadcastB}
	case *LinalgRowReduce:
		return &LinalgRowReduce{linalgBase: c.linalgBase(x.linalgBase),
			Kind: x.Kind, In: c.array(x.In), Out: c.array(x.Out)}
	case *LinalgFill:
		return &LinalgFill{linalgBase: c.linalgBase(x.linalgBase),
			Out: c.array(x.Out), Value: x.Value}
	}
	panic(fmt.Sprintf("ir: Clone does not know op %T", op))
}

func (c *cloner) nest(n *Nest) *Nest {
	if n == nil {
		return nil
	}
	return &Nest{Label: n.Label, origin: n.origin, Root: c.loop(n.Root)}
}

func (c *cloner) loop(l *Loop) *Loop {
	if l == nil {
		return nil
	}
	out := &Loop{IV: l.IV, Parallel: l.Parallel,
		Lo: c.bounds(l.Lo), Hi: c.bounds(l.Hi)}
	if l.Body != nil {
		out.Body = make([]Node, len(l.Body))
		for i, nd := range l.Body {
			out.Body[i] = c.node(nd)
		}
	}
	return out
}

func (c *cloner) node(nd Node) Node {
	switch x := nd.(type) {
	case *Loop:
		return c.loop(x)
	case *Statement:
		return c.stmt(x)
	case *CapNode:
		cap := *x.Cap
		return &CapNode{Cap: &cap}
	}
	panic(fmt.Sprintf("ir: Clone does not know node %T", nd))
}

func (c *cloner) stmt(s *Statement) *Statement {
	out := &Statement{Name: s.Name, Flops: s.Flops}
	if s.Accesses != nil {
		out.Accesses = make([]Access, len(s.Accesses))
		for i, a := range s.Accesses {
			out.Accesses[i] = Access{Array: c.array(a.Array), Write: a.Write,
				Index: c.exprs(a.Index)}
		}
	}
	return out
}

func (c *cloner) bounds(bs []Bound) []Bound {
	if bs == nil {
		return nil
	}
	out := make([]Bound, len(bs))
	for i, b := range bs {
		out[i] = Bound{Expr: c.expr(b.Expr), Div: b.Div}
	}
	return out
}

func (c *cloner) exprs(es []AffExpr) []AffExpr {
	if es == nil {
		return nil
	}
	out := make([]AffExpr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

func (c *cloner) expr(e AffExpr) AffExpr {
	out := AffExpr{Const: e.Const}
	if e.Coef != nil {
		out.Coef = make(map[string]int64, len(e.Coef))
		for k, v := range e.Coef {
			out.Coef[k] = v
		}
	}
	return out
}
