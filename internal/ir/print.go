package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in an MLIR-flavoured textual form.
func (m *Module) Print() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module @%s {\n", m.Name)
	for _, f := range m.Funcs {
		sb.WriteString(indent(f.Print(), 2))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Print renders the function body.
func (f *Func) Print() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func.func @%s(", f.Name)
	arrays := f.Arrays()
	parts := make([]string, len(arrays))
	for i, a := range arrays {
		parts[i] = "%" + a.String()
	}
	sb.WriteString(strings.Join(parts, ", "))
	sb.WriteString(") {\n")
	for _, op := range f.Ops {
		sb.WriteString(indent(PrintOp(op), 2))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// PrintOp renders one operation.
func PrintOp(op Op) string {
	switch x := op.(type) {
	case *SetUncoreCap:
		return fmt.Sprintf("%s {ghz = %.1f, for = %q}\n", x.OpName(), x.GHz, x.From)
	case *Nest:
		var sb strings.Builder
		label := x.Label
		if label == "" {
			label = "nest"
		}
		fmt.Fprintf(&sb, "// affine nest %q", label)
		if x.Origin() != "" {
			fmt.Fprintf(&sb, " (from %s)", x.Origin())
		}
		sb.WriteString("\n")
		sb.WriteString(printLoop(x.Root))
		return sb.String()
	case *TorchSDPA:
		return fmt.Sprintf("%s(%s, %s, %s) -> %s %s\n", x.OpName(), x.Q.Name, x.K.Name, x.V.Name, x.Out.Name, torchShape(x.Out))
	case *TorchMatMul:
		return fmt.Sprintf("%s(%s, %s) -> %s %s\n", x.OpName(), x.A.Name, x.B.Name, x.Out.Name, torchShape(x.Out))
	case *TorchConv2D:
		return fmt.Sprintf("%s(%s, %s) -> %s %s\n", x.OpName(), x.Input.Name, x.Filter.Name, x.Out.Name, torchShape(x.Out))
	default:
		ops := op.Operands()
		names := make([]string, len(ops))
		for i, a := range ops {
			names[i] = a.Name
		}
		s := fmt.Sprintf("%s(%s)", op.OpName(), strings.Join(names, ", "))
		if op.Origin() != "" {
			s += fmt.Sprintf(" {origin = %q}", op.Origin())
		}
		return s + "\n"
	}
}

func printLoop(l *Loop) string {
	if l == nil {
		return ""
	}
	var sb strings.Builder
	kw := "affine.for"
	if l.Parallel {
		kw = "affine.parallel"
	}
	fmt.Fprintf(&sb, "%s %%%s = %s to %s {\n", kw, l.IV, boundStr(l.Lo, "max"), boundStr(l.Hi, "min"))
	for _, node := range l.Body {
		switch x := node.(type) {
		case *Loop:
			sb.WriteString(indent(printLoop(x), 2))
		case *Statement:
			sb.WriteString(indent(printStatement(x), 2))
		case *CapNode:
			sb.WriteString(indent(fmt.Sprintf("polyufc.set_uncore_cap {ghz = %.1f}\n", x.Cap.GHz), 2))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func boundStr(bounds []Bound, combiner string) string {
	if len(bounds) == 1 {
		return bounds[0].String()
	}
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = b.String()
	}
	return combiner + "(" + strings.Join(parts, ", ") + ")"
}

func printStatement(s *Statement) string {
	var sb strings.Builder
	for _, a := range s.Accesses {
		if !a.Write {
			fmt.Fprintf(&sb, "%%v = affine.load %%%s[%s]\n", a.Array.Name, idxStr(a.Index))
		}
	}
	fmt.Fprintf(&sb, "// %s: %d flops\n", s.Name, s.Flops)
	for _, a := range s.Accesses {
		if a.Write {
			fmt.Fprintf(&sb, "affine.store %%v, %%%s[%s]\n", a.Array.Name, idxStr(a.Index))
		}
	}
	return sb.String()
}

func idxStr(idx []AffExpr) string {
	parts := make([]string, len(idx))
	for i, e := range idx {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
