// Package ir defines a small multi-dialect intermediate representation
// mirroring the MLIR levels the PolyUFC flow operates on: a high-level
// torch-like dialect (whole ML operators), a linalg-like dialect
// (structured operations), and an affine dialect (loop nests over affine
// accesses). Lowering between the levels lives in package lower; the
// polyufc.set_uncore_cap operation can be inserted at any level.
package ir

import (
	"fmt"
	"strings"
)

// Dialect identifies the abstraction level of an operation or function.
type Dialect int

// Dialect levels, from highest to lowest.
const (
	DialectTorch Dialect = iota
	DialectLinalg
	DialectAffine
)

func (d Dialect) String() string {
	switch d {
	case DialectTorch:
		return "torch"
	case DialectLinalg:
		return "linalg"
	case DialectAffine:
		return "affine"
	}
	return fmt.Sprintf("dialect(%d)", int(d))
}

// Op is any operation in a function body. Torch ops, linalg ops, affine
// loop nests and polyufc cap ops all implement it.
type Op interface {
	// Dialect reports the op's abstraction level.
	Dialect() Dialect
	// OpName returns the dialect-qualified operation name, e.g.
	// "linalg.matmul".
	OpName() string
	// Operands returns the arrays the op reads or writes (reads first).
	Operands() []*Array
	// Origin returns the name of the higher-level op this op was lowered
	// from, or "" if it is original.
	Origin() string
}

// Array is a tensor/memref: a named, row-major array of fixed element size.
type Array struct {
	Name     string
	ElemSize int64   // bytes per element
	Dims     []int64 // extents, outermost first
}

// NewArray constructs an array; elemSize is in bytes.
func NewArray(name string, elemSize int64, dims ...int64) *Array {
	return &Array{Name: name, ElemSize: elemSize, Dims: append([]int64(nil), dims...)}
}

// NumElems returns the total number of elements.
func (a *Array) NumElems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// SizeBytes returns the array's total size in bytes.
func (a *Array) SizeBytes() int64 { return a.NumElems() * a.ElemSize }

// Strides returns row-major element strides for each dimension.
func (a *Array) Strides() []int64 {
	s := make([]int64, len(a.Dims))
	acc := int64(1)
	for i := len(a.Dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= a.Dims[i]
	}
	return s
}

func (a *Array) String() string {
	parts := make([]string, len(a.Dims))
	for i, d := range a.Dims {
		parts[i] = fmt.Sprint(d)
	}
	return fmt.Sprintf("%s: memref<%sxf%d>", a.Name, strings.Join(parts, "x"), a.ElemSize*8)
}

// Func is a function body: an ordered list of operations at one dialect
// level (mixed levels are permitted mid-lowering).
type Func struct {
	Name string
	Ops  []Op
}

// Module is a compilation unit.
type Module struct {
	Name  string
	Funcs []*Func
}

// NewModule returns a module with a single empty function of the same name.
func NewModule(name string) (*Module, *Func) {
	f := &Func{Name: name}
	return &Module{Name: name, Funcs: []*Func{f}}, f
}

// Arrays returns the distinct arrays referenced by the function, in first-
// use order.
func (f *Func) Arrays() []*Array {
	seen := map[*Array]bool{}
	var out []*Array
	for _, op := range f.Ops {
		for _, a := range op.Operands() {
			if a != nil && !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// SetUncoreCap is the polyufc.set_uncore_cap operation: it requests that
// the uncore frequency be capped at GHz before the following op executes.
type SetUncoreCap struct {
	GHz float64
	// Level records the dialect level the cap was inserted at (caps are
	// dialect-agnostic runtime calls; Level drives the granularity study).
	Level Dialect
	// From names the op the cap was derived for (diagnostics).
	From string
}

// Dialect implements Op; caps report the level they were inserted at.
func (c *SetUncoreCap) Dialect() Dialect { return c.Level }

// OpName implements Op.
func (c *SetUncoreCap) OpName() string { return "polyufc.set_uncore_cap" }

// Operands implements Op; caps touch no arrays.
func (c *SetUncoreCap) Operands() []*Array { return nil }

// Origin implements Op.
func (c *SetUncoreCap) Origin() string { return c.From }

func (c *SetUncoreCap) String() string {
	return fmt.Sprintf("polyufc.set_uncore_cap(%.1f GHz)", c.GHz)
}
