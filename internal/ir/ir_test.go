package ir

import (
	"strings"
	"testing"
)

func TestArrayBasics(t *testing.T) {
	a := NewArray("A", 8, 4, 5, 6)
	if a.NumElems() != 120 {
		t.Fatalf("NumElems = %d", a.NumElems())
	}
	if a.SizeBytes() != 960 {
		t.Fatalf("SizeBytes = %d", a.SizeBytes())
	}
	s := a.Strides()
	if s[0] != 30 || s[1] != 6 || s[2] != 1 {
		t.Fatalf("Strides = %v", s)
	}
}

func TestAffExprArith(t *testing.T) {
	e := AffVar("i").Scale(2).Add(AffTerm(3, "j")).AddConst(-1)
	env := map[string]int64{"i": 4, "j": 5}
	if got := e.Eval(env); got != 2*4+3*5-1 {
		t.Fatalf("Eval = %d", got)
	}
	if e.String() != "2*i + 3*j - 1" {
		t.Fatalf("String = %q", e.String())
	}
	z := AffVar("i").Add(AffTerm(-1, "i"))
	if len(z.Coef) != 0 {
		t.Fatalf("cancellation failed: %v", z.Coef)
	}
}

// buildMatmulNest constructs a plain i,j,k matmul nest for tests.
func buildMatmulNest(m, n, k int64) (*Nest, *Array, *Array, *Array) {
	A := NewArray("A", 8, m, k)
	B := NewArray("B", 8, k, n)
	C := NewArray("C", 8, m, n)
	stmt := &Statement{Name: "S0", Flops: 2}
	i, j, kk := AffVar("i"), AffVar("j"), AffVar("k")
	stmt.Accesses = []Access{
		{Array: A, Index: []AffExpr{i, kk}},
		{Array: B, Index: []AffExpr{kk, j}},
		{Array: C, Index: []AffExpr{i, j}},
		{Array: C, Write: true, Index: []AffExpr{i, j}},
	}
	kl := SimpleLoop("k", AffConst(0), AffConst(k-1), stmt)
	jl := SimpleLoop("j", AffConst(0), AffConst(n-1), kl)
	il := SimpleLoop("i", AffConst(0), AffConst(m-1), jl)
	return &Nest{Label: "matmul", Root: il}, A, B, C
}

func TestNestStatementsAndDomain(t *testing.T) {
	nest, _, _, _ := buildMatmulNest(10, 20, 30)
	sts := nest.Statements()
	if len(sts) != 1 {
		t.Fatalf("statements = %d", len(sts))
	}
	si := sts[0]
	if got := si.IVNames(); len(got) != 3 || got[0] != "i" || got[2] != "k" {
		t.Fatalf("IVs = %v", got)
	}
	n, err := si.Domain.CountInt(1 << 20)
	if err != nil || n != 10*20*30 {
		t.Fatalf("domain count = %d (%v)", n, err)
	}
}

func TestNestFlopsAndTripCount(t *testing.T) {
	nest, _, _, _ := buildMatmulNest(8, 8, 8)
	tc, err := nest.TripCount()
	if err != nil || tc != 512 {
		t.Fatalf("TripCount = %d (%v)", tc, err)
	}
	fl, err := nest.Flops()
	if err != nil || fl != 1024 {
		t.Fatalf("Flops = %d (%v)", fl, err)
	}
}

func TestAccessMap(t *testing.T) {
	acc := Access{
		Array: NewArray("A", 8, 10, 10),
		Index: []AffExpr{AffVar("i").Add(AffVar("k")), AffVar("k")},
	}
	m := AccessMap([]string{"i", "k"}, acc)
	if !m.EvalPoint(nil, []int64{2, 3, 5, 3}) {
		t.Fatal("access map missing point (2,3)->(5,3)")
	}
	if m.EvalPoint(nil, []int64{2, 3, 5, 4}) {
		t.Fatal("access map has wrong point")
	}
}

func TestWalkLoopsDepth(t *testing.T) {
	nest, _, _, _ := buildMatmulNest(4, 4, 4)
	var depths []int
	nest.WalkLoops(func(l *Loop, d int) { depths = append(depths, d) })
	if len(depths) != 3 || depths[0] != 0 || depths[2] != 2 {
		t.Fatalf("depths = %v", depths)
	}
}

func TestOperandsDistinct(t *testing.T) {
	nest, A, B, C := buildMatmulNest(4, 4, 4)
	ops := nest.Operands()
	if len(ops) != 3 {
		t.Fatalf("operands = %d", len(ops))
	}
	want := map[*Array]bool{A: true, B: true, C: true}
	for _, a := range ops {
		if !want[a] {
			t.Fatalf("unexpected operand %s", a.Name)
		}
	}
}

func TestPrintModule(t *testing.T) {
	mod, f := NewModule("test")
	nest, _, _, _ := buildMatmulNest(4, 4, 4)
	f.Ops = append(f.Ops, &SetUncoreCap{GHz: 1.2, Level: DialectLinalg, From: "x"}, nest)
	s := mod.Print()
	for _, want := range []string{"module @test", "func.func @test", "polyufc.set_uncore_cap", "affine.for %i", "affine.load"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Print missing %q in:\n%s", want, s)
		}
	}
}

func TestPassManagerTimings(t *testing.T) {
	mod, _ := NewModule("t")
	var pm PassManager
	ran := 0
	pm.AddPass(PassFunc{PassName: "p1", Fn: func(*Module) error { ran++; return nil }})
	pm.AddPass(PassFunc{PassName: "p2", Fn: func(*Module) error { ran++; return nil }})
	if err := pm.Run(mod); err != nil {
		t.Fatal(err)
	}
	if ran != 2 || len(pm.Timings) != 2 || pm.Timings[0].Pass != "p1" {
		t.Fatalf("timings = %+v, ran = %d", pm.Timings, ran)
	}
}

func TestRedundantCapRemoval(t *testing.T) {
	mod, f := NewModule("caps")
	nest, _, _, _ := buildMatmulNest(2, 2, 2)
	f.Ops = []Op{
		&SetUncoreCap{GHz: 1.2},
		&SetUncoreCap{GHz: 2.0}, // shadows the previous cap
		nest,
		&SetUncoreCap{GHz: 2.0}, // equals active cap: redundant
		nest,
	}
	n := ApplyPatterns(mod, RedundantCapPattern{}, EqualCapPattern{})
	if n != 2 {
		t.Fatalf("rewrites = %d, want 2", n)
	}
	caps := 0
	for _, op := range f.Ops {
		if _, ok := op.(*SetUncoreCap); ok {
			caps++
		}
	}
	if caps != 1 {
		t.Fatalf("remaining caps = %d, want 1", caps)
	}
}

func TestDialectStrings(t *testing.T) {
	if DialectTorch.String() != "torch" || DialectLinalg.String() != "linalg" || DialectAffine.String() != "affine" {
		t.Fatal("dialect names wrong")
	}
}

func TestLoopWithMinMaxBounds(t *testing.T) {
	// i in [max(0, 2), min(9, 5)] -> 4 iterations (2..5).
	stmt := &Statement{Name: "S", Flops: 1}
	l := &Loop{
		IV:   "i",
		Lo:   []Bound{BExpr(AffConst(0)), BExpr(AffConst(2))},
		Hi:   []Bound{BExpr(AffConst(9)), BExpr(AffConst(5))},
		Body: []Node{stmt},
	}
	nest := &Nest{Root: l}
	tc, err := nest.TripCount()
	if err != nil || tc != 4 {
		t.Fatalf("TripCount = %d (%v)", tc, err)
	}
}
