#!/bin/sh
# End-to-end smoke for the fleet cache tier, driving real polyufc-serve
# binaries (built with -race):
#
#   1. Three-peer fleet: daemon A computes and fills the tier; B and C
#      serve the same requests byte-identically. C is SIGKILLed mid-fill
#      and a request sweep against the survivors must show ZERO failed
#      requests — a dead peer costs a recompute, never an error.
#   2. Warm restart: A is killed and restarted on the same -cas-dir; it
#      must answer byte-identically with nonzero cas warm_hits in
#      /statsz, without recomputing.
#   3. Corruption: a persisted entry is bit-flipped on disk; the
#      restarted daemon quarantines it and still answers 200 with the
#      recomputed (identical) bytes.
#   4. Injected peer faults: a daemon whose every peer lookup times out
#      (fleet.peer.timeout=1) still serves 200s through the fallback.
#
# Requires: go, curl, jq.
set -eu

tmp="$(mktemp -d)"
# $(jobs -p) is empty inside an EXIT trap under some shells (dash), so
# every daemon pid is tracked explicitly and the trap sweeps them all.
pids=""
trap 'kill $pids 2>/dev/null || true; rm -rf "$tmp"' EXIT
cd "$(dirname "$0")/.."

echo "== building polyufc-serve (-race)"
go build -race -o "$tmp/polyufc-serve" ./cmd/polyufc-serve

addr_a="127.0.0.1:8361"; base_a="http://$addr_a"
addr_b="127.0.0.1:8362"; base_b="http://$addr_b"
addr_c="127.0.0.1:8363"; base_c="http://$addr_c"
addr_d="127.0.0.1:8364"; base_d="http://$addr_d"

# start_daemon <pidvar> <addr> <logfile> [flags...]
start_daemon() {
    pidvar="$1"; daddr="$2"; log="$3"; shift 3
    # stdout joins the log too: an inherited pipe would keep the caller
    # of this script waiting on any daemon the trap has to sweep.
    "$tmp/polyufc-serve" -addr "$daddr" "$@" >"$log" 2>&1 &
    eval "$pidvar=$!"
    pids="$pids $!"
    for i in $(seq 1 100); do
        curl -sf "http://$daddr/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "daemon on $daddr never came up"; cat "$log"; exit 1
}

# compile <base> <kernel> <outfile> -> http code on stdout
compile() {
    curl -s -o "$3" -w '%{http_code}' -X POST "$1/v1/compile" \
        -d "{\"kernel\":\"$2\",\"size\":\"test\"}"
}

kernels="gemm atax mvt bicg gesummv"

echo "== 1/4 three-peer fleet, SIGKILL one mid-fill, zero failed requests"
start_daemon pid_a "$addr_a" "$tmp/a.log" -cas-dir "$tmp/cas-a" -peer "$base_b" -peer "$base_c"
start_daemon pid_b "$addr_b" "$tmp/b.log" -cas-dir "$tmp/cas-b" -peer "$base_a" -peer "$base_c"
start_daemon pid_c "$addr_c" "$tmp/c.log" -cas-dir "$tmp/cas-c" -peer "$base_a" -peer "$base_b"
grep -q "fleet mode: 2 peer" "$tmp/a.log" || { echo "fleet banner missing:"; cat "$tmp/a.log"; exit 1; }

# Fill through A; SIGKILL C halfway through so fills land on a corpse.
n=0
for k in $kernels; do
    code="$(compile "$base_a" "$k" "$tmp/fill-$k.json")"
    [ "$code" = 200 ] || { echo "fill $k on A got $code"; cat "$tmp/fill-$k.json"; exit 1; }
    n=$((n + 1))
    if [ "$n" = 2 ]; then
        kill -9 "$pid_c" 2>/dev/null || true
        wait "$pid_c" 2>/dev/null || true
        echo "   SIGKILLed peer C after $n fills"
    fi
done

# Sweep every kernel against both survivors: all must be 200, and B's
# answers byte-identical to A's.
fails=0
for k in $kernels; do
    for base in "$base_a" "$base_b"; do
        code="$(compile "$base" "$k" "$tmp/sweep.json")"
        [ "$code" = 200 ] || { fails=$((fails + 1)); echo "   FAIL: $k on $base -> $code"; }
    done
    code="$(compile "$base_b" "$k" "$tmp/b-$k.json")"
    [ "$code" = 200 ] || fails=$((fails + 1))
    cmp -s "$tmp/fill-$k.json" "$tmp/b-$k.json" || {
        fails=$((fails + 1)); echo "   FAIL: $k differs between A and B"; }
done
[ "$fails" = 0 ] || { echo "$fails failed requests with a dead peer"; exit 1; }
curl -s "$base_b/statsz" | jq -e '(.CAS.hits + .Fleet.peer_hits) > 0' >/dev/null || {
    echo "B never served from the cache tier:"; curl -s "$base_b/statsz" | jq '{CAS, Fleet}'; exit 1; }
echo "   zero failed requests; B byte-identical to A"

echo "== 2/4 warm restart: same -cas-dir, nonzero warm hits"
kill -9 "$pid_a" 2>/dev/null || true
wait "$pid_a" 2>/dev/null || true
start_daemon pid_a "$addr_a" "$tmp/a2.log" -cas-dir "$tmp/cas-a"
grep -q "entries warm-started" "$tmp/a2.log" || { echo "cas banner missing:"; cat "$tmp/a2.log"; exit 1; }
code="$(compile "$base_a" gemm "$tmp/warm.json")"
[ "$code" = 200 ] || { echo "warm-restart compile got $code"; exit 1; }
cmp -s "$tmp/fill-gemm.json" "$tmp/warm.json" || {
    echo "warm-restart response differs from the original"; exit 1; }
warm="$(curl -s "$base_a/statsz" | jq -r .CAS.warm_hits)"
[ "$warm" -ge 1 ] 2>/dev/null || {
    echo "no warm hits after restart:"; curl -s "$base_a/statsz" | jq .CAS; exit 1; }
echo "   warm restart OK ($warm warm hits, response byte-identical)"

echo "== 3/4 corruption: bit-flipped entry quarantined, request recomputed"
kill -9 "$pid_a" 2>/dev/null || true
wait "$pid_a" 2>/dev/null || true
victim="$(ls "$tmp/cas-a"/*.cas | head -1)"
# Flip one bit in the middle of the payload.
size="$(wc -c <"$victim")"
printf '\377' | dd of="$victim" bs=1 seek="$((size / 2))" conv=notrunc 2>/dev/null
start_daemon pid_a "$addr_a" "$tmp/a3.log" -cas-dir "$tmp/cas-a"
quarantined="$(curl -s "$base_a/statsz" | jq -r .CAS.quarantined)"
[ "$quarantined" -ge 1 ] 2>/dev/null || {
    echo "corrupt entry not quarantined:"; curl -s "$base_a/statsz" | jq .CAS; exit 1; }
ls "$tmp/cas-a"/*.quarantine >/dev/null 2>&1 || { echo "no .quarantine sidecar"; exit 1; }
fails=0
for k in $kernels; do
    code="$(compile "$base_a" "$k" "$tmp/post-$k.json")"
    [ "$code" = 200 ] || fails=$((fails + 1))
    cmp -s "$tmp/fill-$k.json" "$tmp/post-$k.json" || {
        fails=$((fails + 1)); echo "   FAIL: $k differs after corruption"; }
done
[ "$fails" = 0 ] || { echo "$fails failures after on-disk corruption"; exit 1; }
kill "$pid_a" 2>/dev/null || true; wait "$pid_a" 2>/dev/null || true
kill "$pid_b" 2>/dev/null || true; wait "$pid_b" 2>/dev/null || true
echo "   quarantined $quarantined entr(ies); all responses 200 and byte-identical"

echo "== 4/4 injected peer faults: every lookup times out, still all 200"
start_daemon pid_b "$addr_b" "$tmp/b2.log" -cas-dir "$tmp/cas-b2"
start_daemon pid_d "$addr_d" "$tmp/d.log" -cas-dir "$tmp/cas-d" -peer "$base_b" \
    -peer-timeout 200ms -fault "fleet.peer.timeout=1"
fails=0
for k in $kernels; do
    code="$(compile "$base_d" "$k" "$tmp/faulty-$k.json")"
    [ "$code" = 200 ] || fails=$((fails + 1))
    cmp -s "$tmp/fill-$k.json" "$tmp/faulty-$k.json" || {
        fails=$((fails + 1)); echo "   FAIL: $k differs under injected peer timeout"; }
done
[ "$fails" = 0 ] || { echo "$fails failures under injected peer faults"; exit 1; }
curl -s "$base_d/statsz" | jq -e '.Fleet.peer_errors >= 1' >/dev/null || {
    echo "injected timeouts never surfaced in /statsz:"; curl -s "$base_d/statsz" | jq .Fleet; exit 1; }
kill "$pid_b" 2>/dev/null || true; wait "$pid_b" 2>/dev/null || true
kill "$pid_d" 2>/dev/null || true; wait "$pid_d" 2>/dev/null || true
echo "   fault-injected fleet degraded to local compute, zero failures"

echo "fleet smoke OK"
