#!/bin/sh
# End-to-end smoke for the async job tier and the calibration-drift
# watchdog, driving the real polyufc-serve binary:
#
#   1. Crash-safe resume: a sweep job is submitted, the daemon is killed
#      with SIGKILL mid-job, a restarted daemon (same -jobs-dir) resumes
#      the job from its journal and finishes it — and the final result
#      is byte-identical to an uninterrupted control run.
#   2. Drift watchdog: a daemon whose hardware runs with the measurement
#      drift fault serves measured requests; /statsz shows the residuals
#      climbing past the threshold, an auto-enqueued refit job, and the
#      backend back to "ok" with a swapped calibration — no restart.
#   3. Breaker observability: /statsz exposes the cap breaker's
#      half-open/probe counters.
#
# Requires: go, curl, jq.
set -eu

tmp="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$tmp"' EXIT
cd "$(dirname "$0")/.."

echo "== building polyufc-serve"
go build -o "$tmp/polyufc-serve" ./cmd/polyufc-serve

addr="127.0.0.1:8351"
base="http://$addr"

# start_daemon <jobs-dir> <logfile> [extra flags...]
start_daemon() {
    dir="$1"; log="$2"; shift 2
    "$tmp/polyufc-serve" -addr "$addr" -jobs-dir "$dir" "$@" 2>"$log" &
    daemon_pid=$!
    for i in $(seq 1 50); do
        curl -sf "$base/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "daemon never came up"; cat "$log"; exit 1
}

submit_sweep() {
    curl -s -X POST "$base/v1/jobs" \
        -d '{"kind":"sweep","suite":"all","platform":"bdw","size":"test"}' | jq -r .id
}

wait_done() { # wait_done <job-id>
    for i in $(seq 1 100); do
        state="$(curl -s "$base/v1/jobs/$1" | jq -r .state)"
        [ "$state" = done ] && return 0
        case "$state" in failed|canceled) echo "job $1 ended $state"; exit 1;; esac
        sleep 0.1
    done
    echo "job $1 never finished (state $state)"; exit 1
}

echo "== 1/3 control run: uninterrupted sweep"
start_daemon "$tmp/jobs-control" "$tmp/control.log"
job="$(submit_sweep)"
wait_done "$job"
curl -s "$base/v1/jobs/$job/result" >"$tmp/control.json"
kill "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
jq -e '.kernels | length > 3' "$tmp/control.json" >/dev/null || {
    echo "control sweep result looks empty:"; head -c 300 "$tmp/control.json"; exit 1; }

echo "== 2/3 crash run: SIGKILL mid-job, restart, byte-identical resume"
start_daemon "$tmp/jobs-crash" "$tmp/crash-a.log"
job="$(submit_sweep)"
# Let at least one unit checkpoint, then SIGKILL the whole daemon.
for i in $(seq 1 100); do
    units="$(curl -s "$base/v1/jobs/$job" | jq -r .units_done)"
    [ "$units" -ge 1 ] 2>/dev/null && break
    sleep 0.02
done
kill -9 "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
echo "   killed daemon with $units/15 units done"

start_daemon "$tmp/jobs-crash" "$tmp/crash-b.log"
grep -q "job tier on" "$tmp/crash-b.log" || { echo "job-tier banner missing:"; cat "$tmp/crash-b.log"; exit 1; }
status="$(curl -s "$base/v1/jobs/$job")"
if [ "$(echo "$status" | jq -r .state)" != done ]; then
    [ "$(echo "$status" | jq -r .resumed)" -ge 1 ] || {
        echo "interrupted job not marked resumed: $status"; exit 1; }
fi
wait_done "$job"
curl -s "$base/v1/jobs/$job/result" >"$tmp/resumed.json"
cmp -s "$tmp/control.json" "$tmp/resumed.json" || {
    echo "resumed result differs from the uninterrupted control run"
    exit 1
}
kill "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
echo "   resume OK (result byte-identical to control)"

echo "== 3/3 drift watchdog: injected drift -> auto refit -> healthy"
start_daemon "$tmp/jobs-drift" "$tmp/drift.log" -fault "hw.measure.drift=1"
for i in 1 2 3; do
    curl -s -X POST "$base/v1/search" \
        -d '{"kernel":"gemm","platform":"bdw","size":"test","measure":true}' >/dev/null
done
# The third residual trips the watchdog; wait for the refit episode to
# resolve back to "ok" with one completed re-fit.
for i in $(seq 1 100); do
    drift="$(curl -s "$base/statsz" | jq -r '.Drift.BDW | "\(.state) \(.refits)"')"
    [ "$drift" = "ok 1" ] && break
    sleep 0.1
done
[ "$drift" = "ok 1" ] || { echo "watchdog never recovered (drift: $drift)"; cat "$tmp/drift.log"; exit 1; }
curl -s "$base/v1/jobs" | jq -e '.jobs | map(select(.kind == "refit" and .state == "done")) | length == 1' >/dev/null || {
    echo "no completed refit job:"; curl -s "$base/v1/jobs"; exit 1; }
# Post-refit the backend serves clean again (no 503, no degraded flag).
code="$(curl -s -o "$tmp/after.json" -w '%{http_code}' -X POST "$base/v1/search" \
    -d '{"kernel":"gemm","platform":"bdw","size":"test"}')"
[ "$code" = 200 ] || { echo "post-refit search got $code:"; cat "$tmp/after.json"; exit 1; }
jq -e '.calibration_degraded != true' "$tmp/after.json" >/dev/null || {
    echo "post-refit response still degraded:"; cat "$tmp/after.json"; exit 1; }
echo "   drift episode: degraded -> refit job -> ok (1 refit)"

curl -s "$base/statsz" >"$tmp/statsz.json"
jq -e '.Breakers.BDW | has("HalfOpens") and has("ProbeSuccesses") and has("ProbeFailures")' \
    "$tmp/statsz.json" >/dev/null || {
    echo "/statsz missing breaker probe counters:"; jq .Breakers "$tmp/statsz.json"; exit 1; }
kill "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true

echo "jobs smoke OK"
