#!/bin/sh
# End-to-end smoke for the precomputed capping-plan tables, driving the
# real binaries against the fractional-grid (0.05 GHz step) backend:
#
#   1. polyufc -build-plan-table killed with SIGKILL mid-sweep: the
#      output path holds either nothing or a complete valid table —
#      never a torn file. A -resume run replays the journaled cells and
#      produces a table byte-identical to an uninterrupted sweep.
#   2. polyufc -plan-table answers caps from the table ([plan table]
#      markers, hit counters).
#   3. polyufc-serve boots with the table pinned to its own boot-time
#      calibration and reports hits in /statsz.
#
# Requires: go, curl.
set -eu

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; kill $(jobs -p) 2>/dev/null || true' EXIT
cd "$(dirname "$0")/.."

echo "== building binaries"
go build -o "$tmp/polyufc" ./cmd/polyufc
go build -o "$tmp/polyufc-serve" ./cmd/polyufc-serve

plat="platforms/wide-uncore.json"
table="$tmp/wide.plan.json"

echo "== 1/3 build-plan-table: SIGKILL mid-sweep, resume byte-identical"
"$tmp/polyufc" -build-plan-table "$tmp/clean.plan.json" -platform-file "$plat" \
    -platform wide >/dev/null

"$tmp/polyufc" -build-plan-table "$table" -platform-file "$plat" \
    -platform wide -journal "$tmp/sweep.jsonl" >/dev/null 2>&1 &
build_pid=$!
# Let it checkpoint some cells, then kill -9.
while [ ! -s "$tmp/sweep.jsonl" ]; do sleep 0.02; done
kill -9 "$build_pid" 2>/dev/null || true
wait "$build_pid" 2>/dev/null || true
done_before="$(grep -c . "$tmp/sweep.jsonl" || true)"

if [ -e "$table" ]; then
    # The sweep won the race: atomic rename means the file is complete.
    cmp -s "$tmp/clean.plan.json" "$table" || { echo "table present after kill but not a complete valid sweep"; exit 1; }
    echo "   (sweep finished before the kill landed; file is complete)"
else
    "$tmp/polyufc" -build-plan-table "$table" -platform-file "$plat" \
        -platform wide -journal "$tmp/sweep.jsonl" -resume >"$tmp/resume.out"
    grep -q "resuming sweep" "$tmp/resume.out" || { echo "resume banner missing:"; cat "$tmp/resume.out"; exit 1; }
fi
cmp -s "$tmp/clean.plan.json" "$table" || {
    echo "resumed table differs from an uninterrupted sweep"
    exit 1
}
echo "   resume OK ($done_before cells survived the SIGKILL, table byte-identical)"

echo "== 2/3 polyufc -plan-table: caps answered from the table"
"$tmp/polyufc" -kernel gemm -size test -platform-file "$plat" -platform wide \
    -plan-table "$table" >"$tmp/compile.out"
grep -q "\[plan table\]" "$tmp/compile.out" || { echo "no [plan table] marker:"; cat "$tmp/compile.out"; exit 1; }
grep -q "plan tables: 1 loaded" "$tmp/compile.out" || { echo "plan stats line missing:"; cat "$tmp/compile.out"; exit 1; }
echo "   $(grep 'plan tables:' "$tmp/compile.out")"

echo "== 3/3 polyufc-serve: boot with the table, /statsz reports hits"
addr="127.0.0.1:8339"
"$tmp/polyufc-serve" -addr "$addr" -platform-file "$plat" -plan-table "$table" \
    2>"$tmp/serve.log" &
serve_pid=$!
for i in $(seq 1 50); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null || { echo "daemon never came up"; cat "$tmp/serve.log"; exit 1; }

curl -s -X POST "http://$addr/v1/search" \
    -d '{"kernel":"gemm","platform":"wide","size":"test"}' >"$tmp/search.json"
grep -q '"nests"' "$tmp/search.json" || { echo "search got no answer:"; cat "$tmp/search.json"; exit 1; }

curl -s "http://$addr/statsz" >"$tmp/statsz.json"
grep -q '"loaded": *1' "$tmp/statsz.json" || { echo "/statsz shows no loaded table:"; cat "$tmp/statsz.json"; exit 1; }
grep -q '"hits": *[1-9]' "$tmp/statsz.json" || { echo "/statsz shows no plan hits:"; cat "$tmp/statsz.json"; exit 1; }

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "daemon exited non-zero"; cat "$tmp/serve.log"; exit 1; }
echo "   serve OK (table loaded, hits counted, clean drain)"
echo "plantable smoke: all good"
