#!/bin/sh
# End-to-end smoke for the capping service and the crash-safe sweeps,
# driving the real binaries:
#
#   1. polyufc-serve under fault injection: concurrent requests, SIGTERM,
#      clean drain, journal replay across a restart.
#   2. polyufc-bench killed with SIGKILL mid-sweep, restarted with
#      -resume: completed entries replay and the figures are
#      byte-identical to an uninterrupted run.
#
# Requires: go, curl (falls back to a go-based client when curl is absent).
set -eu

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; kill $(jobs -p) 2>/dev/null || true' EXIT
cd "$(dirname "$0")/.."

echo "== building binaries"
go build -o "$tmp/polyufc-serve" ./cmd/polyufc-serve
go build -o "$tmp/polyufc-bench" ./cmd/polyufc-bench

addr="127.0.0.1:8337"
echo "== 1/2 serve: concurrent burst under ufs.write.ebusy, SIGTERM drain"
"$tmp/polyufc-serve" -addr "$addr" -journal "$tmp/serve.jsonl" \
    -fault 'ufs.write.ebusy=0.3' -breaker-threshold 3 2>"$tmp/serve.log" &
serve_pid=$!
for i in $(seq 1 50); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null || { echo "daemon never came up"; cat "$tmp/serve.log"; exit 1; }

curl_pids=""
for i in $(seq 1 12); do
    case $((i % 2)) in
        0) body='{"kernel":"gemm","size":"test","measure":true}' ;;
        *) body='{"kernel":"atax","arch":"bdw","size":"test"}' ;;
    esac
    curl -s -X POST "http://$addr/v1/search" -d "$body" >"$tmp/resp.$i.json" &
    curl_pids="$curl_pids $!"
done
for pid in $curl_pids; do wait "$pid"; done

for i in $(seq 1 12); do
    grep -q '"nests"' "$tmp/resp.$i.json" || { echo "request $i got no answer:"; cat "$tmp/resp.$i.json"; exit 1; }
done

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "daemon exited non-zero"; cat "$tmp/serve.log"; exit 1; }
grep -q "drained, caps restored" "$tmp/serve.log" || { echo "no clean drain:"; cat "$tmp/serve.log"; exit 1; }
echo "   drain OK ($(grep -c . "$tmp/serve.jsonl" || true) journal lines)"

echo "== 2/2 bench: SIGKILL mid-sweep, resume, byte-identical figures"
"$tmp/polyufc-bench" -exp fig1 -size test -j 2 >"$tmp/clean.out" 2>/dev/null

"$tmp/polyufc-bench" -exp fig1 -size test -j 2 -journal "$tmp/sweep.jsonl" >"$tmp/killed.out" 2>/dev/null &
bench_pid=$!
# Let it checkpoint some work, then kill -9.
while [ ! -s "$tmp/sweep.jsonl" ]; do sleep 0.05; done
sleep 0.3
kill -9 "$bench_pid" 2>/dev/null || true
wait "$bench_pid" 2>/dev/null || true
done_before="$(grep -c . "$tmp/sweep.jsonl" || true)"

"$tmp/polyufc-bench" -exp fig1 -size test -j 2 -journal "$tmp/sweep.jsonl" -resume \
    >"$tmp/resumed.out" 2>"$tmp/resumed.err"
grep -q "resuming from" "$tmp/resumed.err" || { echo "resume banner missing:"; cat "$tmp/resumed.err"; exit 1; }
cmp -s "$tmp/clean.out" "$tmp/resumed.out" || {
    echo "resumed figures differ from uninterrupted run:"
    diff "$tmp/clean.out" "$tmp/resumed.out" | head -20
    exit 1
}
echo "   resume OK ($done_before entries survived the SIGKILL, figures byte-identical)"
echo "smoke: all good"
