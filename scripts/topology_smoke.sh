#!/bin/sh
# End-to-end smoke for topology-aware backends, driving the real daemon:
#
#   1. polyufc-serve boots the 2-socket description from JSON alone:
#      /statsz reports the socket/link shape, /healthz one breaker per
#      socket domain, and a 2-socket search answers with a topology
#      rollup and per-socket cap vectors while the v1 single-socket
#      response stays free of every topology key.
#   2. A ufs.write.ebusy fault scoped to socket 1 (-fault-socket 1)
#      degrades only that domain: the measured answer stands, the
#      response names the sick socket, and /healthz shows socket 0
#      closed with socket 1 open.
#
# Requires: go, curl.
set -eu

tmp="$(mktemp -d)"
# dash leaves the jobs table empty inside EXIT traps, so kill by the
# recorded pid rather than $(jobs -p) — a failed assertion must not
# leak a daemon holding the port for the next run.
serve_pid=""
trap '{ [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; } || true; rm -rf "$tmp"' EXIT
cd "$(dirname "$0")/.."

echo "== building polyufc-serve"
go build -o "$tmp/polyufc-serve" ./cmd/polyufc-serve

addr="127.0.0.1:8339"
wait_up() {
    for i in $(seq 1 50); do
        curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "daemon never came up"; cat "$1"; exit 1
}

echo "== 1/2 healthy 2-socket boot: per-socket stats and topology responses"
"$tmp/polyufc-serve" -addr "$addr" \
    -platform-file platforms/2-socket-bdw.json 2>"$tmp/serve1.log" &
serve_pid=$!
wait_up "$tmp/serve1.log"

curl -s "http://$addr/statsz" >"$tmp/statsz.json"
grep -q '"Sockets": *2' "$tmp/statsz.json" || { echo "statsz misses the 2-socket shape:"; cat "$tmp/statsz.json"; exit 1; }
grep -q '"InterconnectGBs": *19.2' "$tmp/statsz.json" || { echo "statsz misses the interconnect:"; cat "$tmp/statsz.json"; exit 1; }
grep -q '"2S-BDW#s1"' "$tmp/statsz.json" || { echo "no socket-1 breaker:"; cat "$tmp/statsz.json"; exit 1; }

curl -s -X POST "http://$addr/v1/search" \
    -d '{"kernel":"gemm","platform":"2s-bdw","size":"test"}' >"$tmp/topo.json"
grep -q '"topology"' "$tmp/topo.json" || { echo "2-socket search has no topology rollup:"; cat "$tmp/topo.json"; exit 1; }
grep -q '"socket_caps"' "$tmp/topo.json" || { echo "2-socket search has no cap vectors:"; cat "$tmp/topo.json"; exit 1; }
grep -q '"cluster_edp"' "$tmp/topo.json" || { echo "2-socket search has no cluster EDP:"; cat "$tmp/topo.json"; exit 1; }

curl -s -X POST "$addr/v1/search" -d '{"kernel":"gemm","size":"test"}' >"$tmp/v1.json"
grep -q '"nests"' "$tmp/v1.json" || { echo "v1 request got no answer:"; cat "$tmp/v1.json"; exit 1; }
for key in topology socket_caps remote_ratio socket_degraded; do
    if grep -q "\"$key\"" "$tmp/v1.json"; then
        echo "v1 single-socket response grew a $key key:"; cat "$tmp/v1.json"; exit 1
    fi
done
echo "   2-socket boot OK (per-socket breakers, topology rollup, clean v1 surface)"

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "daemon exited non-zero"; cat "$tmp/serve1.log"; exit 1; }

echo "== 2/2 socket-scoped fault: only the sick domain degrades"
"$tmp/polyufc-serve" -addr "$addr" \
    -platform-file platforms/2-socket-bdw.json \
    -fault 'ufs.write.ebusy=1' -fault-socket 1 -breaker-threshold 1 \
    2>"$tmp/serve2.log" &
serve_pid=$!
wait_up "$tmp/serve2.log"

curl -s -X POST "http://$addr/v1/search" \
    -d '{"kernel":"gemm","platform":"2s-bdw","size":"test","measure":true}' >"$tmp/fault.json"
grep -q '"measured"' "$tmp/fault.json" || { echo "measured answer missing:"; cat "$tmp/fault.json"; exit 1; }
grep -q '"socket_degraded"' "$tmp/fault.json" || { echo "no socket_degraded field:"; cat "$tmp/fault.json"; exit 1; }
grep -q '"s1: ' "$tmp/fault.json" || { echo "socket 1 not the degraded domain:"; cat "$tmp/fault.json"; exit 1; }
grep -q '"degraded_to"' "$tmp/fault.json" && { echo "socket-0 measurement degraded too:"; cat "$tmp/fault.json"; exit 1; }

curl -s "http://$addr/healthz" >"$tmp/health.json"
grep -q '"status": *"degraded"' "$tmp/health.json" || { echo "healthz not degraded:"; cat "$tmp/health.json"; exit 1; }
grep -q '"2S-BDW": *"closed"' "$tmp/health.json" || { echo "socket 0 tripped too:"; cat "$tmp/health.json"; exit 1; }
grep -q '"2S-BDW#s1": *"open"' "$tmp/health.json" || { echo "socket 1 breaker not open:"; cat "$tmp/health.json"; exit 1; }
echo "   fault isolation OK (answer stood, only 2S-BDW#s1 open)"

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "daemon exited non-zero"; cat "$tmp/serve2.log"; exit 1; }

echo "topology smoke: PASS"
