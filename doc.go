// Package polyufc is a from-scratch Go reproduction of "PolyUFC:
// Polyhedral Compilation Meets Roofline Analysis for Uncore Frequency
// Capping" (CGO 2026): an MLIR-style compilation flow that statically
// computes operational intensity with a polyhedral cache model
// (PolyUFC-CM), characterizes affine kernels against calibrated
// performance and power rooflines, and selects per-kernel uncore frequency
// caps that improve energy-delay product over the default uncore driver.
//
// The implementation and its simulated hardware substrate live under
// internal/; the binaries under cmd/ (polyufc, polyufc-bench, polyufc-cm)
// and the runnable examples under examples/ are the public surface. See
// README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-reproduction results.
package polyufc
