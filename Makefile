# PolyUFC build and verification targets.

GO ?= go

.PHONY: all build vet test race bench experiments fmt cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector gate for the parallel evaluation engine (tier-1 in CI).
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure (test-size inputs; set
# POLYUFC_BENCH_SIZE=bench for evaluation shapes).
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table and figure at evaluation size.
experiments:
	$(GO) run ./cmd/polyufc-bench -exp all -size bench

fmt:
	gofmt -w .

cover:
	$(GO) test -cover ./internal/...
