# PolyUFC build and verification targets.

GO ?= go

.PHONY: all build vet test race bench experiments faults fuzz fmt cover serve smoke pipeline platforms plantable jobs fleet tiling topology

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector gate for the parallel evaluation engine (tier-1 in CI).
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure (test-size inputs; set
# POLYUFC_BENCH_SIZE=bench for evaluation shapes).
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table and figure at evaluation size.
experiments:
	$(GO) run ./cmd/polyufc-bench -exp all -size bench

# Fault-tolerance gate: injection, cap-controller retry/restore and
# best-effort degradation paths under the race detector.
faults:
	$(GO) test -race ./internal/faults
	$(GO) test -race -run 'Fault|Degrade|CapController|BestEffort|Tolerates|Grid' \
		./internal/hw ./internal/core ./internal/experiments ./internal/search

# Staged-pipeline gate: the stage runner unit suite plus the equivalence
# properties (memo on vs. off byte-identical Results, prefix runs seeding
# full compiles, server stage reuse) under the race detector.
pipeline:
	$(GO) test -race ./internal/pipeline
	$(GO) test -race -run 'Pipeline|Stage|Memo|Prefix|Timings' \
		./internal/core ./internal/server ./internal/parallel ./internal/ir

# Platform-backend gate: schema-validate the embedded and platforms/*.json
# descriptions (round-trip, registry, calibration artifacts), prove the
# registry-built BDW/RPL platforms equivalent to the legacy constructors,
# run a JSON-only backend end to end, and re-check the golden figures
# through the registry path.
platforms:
	$(GO) test ./internal/platform
	$(GO) test -run 'Backend|Grid|Clamp|Platform' ./internal/hw ./internal/server ./internal/experiments
	$(GO) test -run 'Golden' ./internal/experiments

# Plan-table gate: the table-vs-search equivalence suite, staleness and
# fractional-grid regressions under the race detector, the pipeline and
# serve-path integration tests, a short deserializer fuzz session, and
# the end-to-end smoke script (kill -9 mid-sweep, journal resume, serve
# boot with /statsz counters — on the fractional-grid backend).
plantable:
	$(GO) test -race ./internal/plantable
	$(GO) test -race -run 'Plan' ./internal/core ./internal/server
	$(GO) test -fuzz FuzzParsePlanTable -fuzztime 5s ./internal/plantable
	sh scripts/plantable_smoke.sh

# Async-job and drift-watchdog gate: the journal-backed job tier and
# leak checker under the race detector, the daemon's job/drift suites,
# then the real binary end to end — SIGKILL mid-job with byte-identical
# resume, and injected calibration drift triggering an automatic re-fit
# visible in /statsz.
jobs:
	$(GO) test -race ./internal/jobs ./internal/leakcheck
	$(GO) test -race -run 'Job|Drift|Refit|Quarantine' ./internal/server ./internal/roofline ./internal/journal
	sh scripts/jobs_smoke.sh

# Fleet-cache gate: the content-addressed store (bit-flip property and
# corruption tests), the peer protocol (breakers, hedging, injected
# faults) and the generalized breaker under the race detector, the
# daemon's fleet/CAS integration suite, a short fuzz session over the
# on-disk entry codec, and the end-to-end smoke script — three peers,
# SIGKILL one mid-fill with zero failed requests, warm-restart cache
# hits, on-disk corruption quarantined, injected peer faults absorbed.
fleet:
	$(GO) test -race ./internal/cas ./internal/fleet ./internal/breaker
	$(GO) test -race -run 'CAS|Fleet|Compact|RetryAfter' ./internal/server ./internal/journal ./internal/jobs
	$(GO) test -fuzz FuzzDecodeEntry -fuzztime 5s ./internal/cas
	sh scripts/fleet_smoke.sh

# Tiling-strategy gate: the strategy layer's unit suite under the race
# detector, the golden equivalence properties (zero-value config
# byte-identical to explicit pluto, distinct strategies never sharing
# memo entries), the per-strategy degrade and auto-skips-errored tests,
# the divergence-witness sweep, and a short fuzz session over the
# strategy-spec parser.
tiling:
	$(GO) test -race ./internal/tiling
	$(GO) test -race -run 'Tiling|DefaultAndExplicitPluto|DistinctStrategies|Auto' \
		./internal/core ./internal/server ./internal/experiments ./internal/plantable
	$(GO) test -fuzz FuzzParseTilingSpec -fuzztime 5s ./internal/tiling

# Topology gate: the schema-v2 platform suite and backend-decoder fuzz
# session, the v1-vs-v2 spelling equivalence properties (constants,
# compile results, plan tables), socket placement and cluster rollups,
# per-socket breaker isolation under the race detector, and the real
# daemon end to end on the 2-socket description (socket-scoped fault,
# only the sick domain's breaker opens).
topology:
	$(GO) test -race ./internal/platform
	$(GO) test -race -run 'Topology|Socket|Cluster|V2Spelling|Rho|NUMA|Remote' \
		./internal/roofline ./internal/model ./internal/hw ./internal/core \
		./internal/server ./internal/plantable ./internal/experiments
	$(GO) test -fuzz FuzzParseBackend -fuzztime 5s ./internal/platform
	sh scripts/topology_smoke.sh

# Run the capping service locally with production-shaped defaults.
serve:
	$(GO) run ./cmd/polyufc-serve -addr 127.0.0.1:8321

# Service-robustness gate: the in-process daemon suite under the race
# detector (admission shedding, breaker degradation, panic isolation,
# drain, journal replay), then the real binaries end to end — concurrent
# requests under injected faults, SIGTERM drain, and a SIGKILLed sweep
# resumed byte-identically.
smoke:
	$(GO) build ./cmd/polyufc-serve
	$(GO) test -race ./internal/server ./internal/journal
	sh scripts/smoke.sh

# Short native fuzz smoke over the affine-kernel parser.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/frontend

fmt:
	gofmt -w .

cover:
	$(GO) test -cover ./internal/...
