# PolyUFC build and verification targets.

GO ?= go

.PHONY: all build vet test race bench experiments faults fuzz fmt cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector gate for the parallel evaluation engine (tier-1 in CI).
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure (test-size inputs; set
# POLYUFC_BENCH_SIZE=bench for evaluation shapes).
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table and figure at evaluation size.
experiments:
	$(GO) run ./cmd/polyufc-bench -exp all -size bench

# Fault-tolerance gate: injection, cap-controller retry/restore and
# best-effort degradation paths under the race detector.
faults:
	$(GO) test -race ./internal/faults
	$(GO) test -race -run 'Fault|Degrade|CapController|BestEffort|Tolerates|Grid' \
		./internal/hw ./internal/core ./internal/experiments ./internal/search

# Short native fuzz smoke over the affine-kernel parser.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/frontend

fmt:
	gofmt -w .

cover:
	$(GO) test -cover ./internal/...
