// sdpa_phases reproduces the Fig. 5 study: scaled dot-product attention
// from BERT decomposes across the torch -> linalg -> affine dialect stack
// into a CB matmul, a bandwidth-bound middle region of seven element-wise
// and reduction ops, and a final CB matmul — phases that are invisible at
// torch granularity and motivate linalg-level capping (ML-PolyUFC).
//
//	go run ./examples/sdpa_phases
package main

import (
	"fmt"
	"log"

	"polyufc/internal/core"
	"polyufc/internal/ir"
	"polyufc/internal/roofline"
	"polyufc/internal/workloads"
)

func main() {
	target, err := roofline.ResolveName("rpl")
	if err != nil {
		log.Fatal(err)
	}
	k, err := workloads.ByName("sdpa-bert")
	if err != nil {
		log.Fatal(err)
	}
	mod, err := k.Build(workloads.Bench) // the paper's 2x12x128x64 shape
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(target)
	phases, err := core.PhaseStudy(mod, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, lvl := range []ir.Dialect{ir.DialectTorch, ir.DialectLinalg} {
		fmt.Printf("-- %s dialect --\n", lvl)
		for _, ph := range phases[lvl] {
			bar := "#"
			if ph.Class.String() == "BB" {
				bar = "="
			}
			fmt.Printf("  %-46s [%s] %s  OI %8.2f FpB\n", ph.Op, bar, ph.Class, ph.OI)
		}
	}

	// Now compile at the two granularities and compare cap counts.
	for _, lvl := range []ir.Dialect{ir.DialectTorch, ir.DialectLinalg} {
		mod, err := k.Build(workloads.Bench)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.DefaultConfig(target)
		cfg.CapLevel = lvl
		res, err := core.Compile(mod, cfg)
		if err != nil {
			log.Fatal(err)
		}
		caps := 0
		var freqs []float64
		for _, op := range res.Module.Funcs[0].Ops {
			if c, ok := op.(*ir.SetUncoreCap); ok {
				caps++
				freqs = append(freqs, c.GHz)
			}
		}
		fmt.Printf("\n%s-level capping: %d caps %v (inserted %d, removed %d)\n",
			lvl, caps, freqs, res.CapsInserted, res.CapsRemoved)
	}
	fmt.Println("\nlinalg granularity exposes the CB/BB*/CB structure a single torch-level cap would average away (Sec. VI-B).")
}
