// custom_kernel compiles an affine kernel written in the PolyUFC source
// language (the cgeist stand-in front end), showing the full path from
// user source to uncore caps: parse -> Pluto (interchange + tiling +
// parallelization) -> PolyUFC-CM -> characterization -> cap search ->
// measured comparison against the driver default.
//
//	go run ./examples/custom_kernel
//	go run ./examples/custom_kernel -f examples/kernels/seidel.puc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"polyufc/internal/core"
	"polyufc/internal/frontend"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/roofline"
)

const defaultSrc = `
# Column-sum then scale: a bandwidth-bound pair of sweeps.
param N = 2000
array A[N][N] : f64
array colsum[N] : f64

for j = 0 to N-1 {
  for i = 0 to N-1 {
    colsum[j] += A[i][j];
  }
}
for i = 0 to N-1 {
  for j = 0 to N-1 {
    A[i][j] = A[i][j] / colsum[j];
  }
}
`

func main() {
	file := flag.String("f", "", "kernel source file (default: a built-in column-normalize kernel)")
	arch := flag.String("arch", "rpl", "platform: bdw or rpl")
	flag.Parse()

	src := defaultSrc
	name := "colnorm"
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
		name = *file
	}
	mod, err := frontend.Parse(name, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: %d loop nests\n", name, len(mod.Funcs[0].Ops))

	target, err := roofline.ResolveName(*arch)
	if err != nil {
		log.Fatal(err)
	}
	plat := target.Platform
	res, err := core.Compile(mod, core.DefaultConfig(target))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Reports {
		fmt.Printf("  %-22s OI %8.2f FpB  %s  tiled=%-5v cap %.1f GHz\n",
			r.Label, r.OI, r.Class, r.Tiled, r.CapGHz)
	}

	// Measure against the driver default on one machine (shared profiles).
	m := hw.NewMachine(plat)
	m.SetUncoreCap(plat.UncoreMax)
	var base hw.RunResult
	for _, op := range res.Module.Funcs[0].Ops {
		if nest, ok := op.(*ir.Nest); ok {
			r, err := m.RunNest(nest)
			if err != nil {
				log.Fatal(err)
			}
			base.Seconds += r.Seconds
			base.PkgJoules += r.PkgJoules
		}
	}
	base.EDP = base.PkgJoules * base.Seconds
	capped, err := m.RunFunc(res.Module.Funcs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.3f ms, %.3f J | capped: %.3f ms, %.3f J | EDP %+.1f%%\n",
		base.Seconds*1e3, base.PkgJoules, capped.Seconds*1e3, capped.PkgJoules,
		100*(1-capped.EDP/base.EDP))
}
