// conv2d: the vision workloads of Table II (AlexNet, ConvNeXt, WideResNet
// shapes) compiled and capped on both microarchitectures — the
// compute-bound story of the paper: near-flat time across the uncore
// range, so low caps save energy.
//
//	go run ./examples/conv2d
package main

import (
	"fmt"
	"log"

	"polyufc/internal/core"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/workloads"
)

func main() {
	kernels := []string{"conv2d-alexnet", "conv2d-convnext", "conv2d-wideresnet"}
	for _, b := range platform.Paper() {
		target, err := roofline.Resolve(b)
		if err != nil {
			log.Fatal(err)
		}
		plat := target.Platform
		fmt.Printf("== %s (%s) ==\n", plat.Name, plat.CPU)
		for _, name := range kernels {
			k, err := workloads.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			mod, err := k.Build(workloads.Test)
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Compile(mod, core.DefaultConfig(target))
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range res.Reports {
				fmt.Printf("  %-22s OI %7.1f FpB  %s  cap %.1f GHz  predicted EDP %+5.1f%%\n",
					name, r.OI, r.Class, r.CapGHz,
					100*(1-r.Est.EDP/r.EstDefault.EDP))
			}
		}
	}
	fmt.Println("\n(problem sizes: test class; use the polyufc CLI with -size bench/full for Table-II shapes)")
}
