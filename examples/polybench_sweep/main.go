// polybench_sweep runs a PolyBench subset through the full flow on both
// platforms and compares measured time/energy/EDP against the Pluto +
// default-UFS baseline — a compact version of the paper's Fig. 7.
//
//	go run ./examples/polybench_sweep            # bench-size subset
//	go run ./examples/polybench_sweep -size bench -all -j 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"polyufc/internal/experiments"
	"polyufc/internal/workloads"
)

func main() {
	var (
		size = flag.String("size", "bench", "problem size class: test, bench, full")
		all  = flag.Bool("all", false, "run the whole PolyBench suite (slow at bench size)")
		jobs = flag.Int("j", 0, "worker-pool size for sweeps (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	var sz workloads.SizeClass
	switch *size {
	case "test":
		sz = workloads.Test
	case "bench":
		sz = workloads.Bench
	case "full":
		sz = workloads.Full
	default:
		log.Fatalf("unknown size %q", *size)
	}

	s, err := experiments.New(sz, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	// Kernels sweep concurrently through the suite's worker pool; rows
	// come back in input order, so the printout below is deterministic.
	s.Concurrency = *jobs
	names := []string{"gemm", "2mm", "mvt", "gemver", "atax", "jacobi-1d"}
	if *all {
		names = names[:0]
		for _, k := range workloads.PolyBench() {
			names = append(names, k.Name)
		}
	}
	for _, p := range s.Platforms() {
		rows, err := s.Fig7(p, names)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", p.Name)
		fmt.Printf("%-14s %4s %8s | %7s %8s %7s\n", "kernel", "cls", "cap GHz", "time%", "energy%", "EDP%")
		for _, r := range rows {
			fmt.Printf("%-14s %4s %8.1f | %+6.1f  %+6.1f  %+6.1f\n",
				r.Kernel, r.Class, r.CapGHz,
				100*r.TimeGain, 100*r.EnergyGain, 100*r.EDPGain)
		}
		fmt.Printf("geomean EDP improvement: %+.1f%%\n\n", 100*experiments.GeomeanEDPGain(rows))
	}
}
