// Quickstart: build an affine kernel, run the PolyUFC flow against a
// simulated Raptor Lake machine, and execute the capped program.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"polyufc/internal/core"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/roofline"
)

func main() {
	// 1. Build a kernel: C[i,j] += A[i,k] * B[k,j] over 96^3, expressed as
	// an affine loop nest (what the linalg->affine lowering produces).
	n := int64(96)
	A := ir.NewArray("A", 8, n, n)
	B := ir.NewArray("B", 8, n, n)
	C := ir.NewArray("C", 8, n, n)
	stmt := &ir.Statement{Name: "S0", Flops: 2}
	i, j, k := ir.AffVar("i"), ir.AffVar("j"), ir.AffVar("k")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i, k}},
		{Array: B, Index: []ir.AffExpr{k, j}},
		{Array: C, Index: []ir.AffExpr{i, j}},
		{Array: C, Write: true, Index: []ir.AffExpr{i, j}},
	}
	kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(n-1), stmt)
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(n-1), kl)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
	mod, f := ir.NewModule("quickstart")
	f.Ops = []ir.Op{&ir.Nest{Label: "matmul", Root: il}}

	// 2. Pick a platform and calibrate its performance/power rooflines
	// (the one-time microbenchmarking of Tab. I).
	target, err := roofline.ResolveName("rpl")
	if err != nil {
		log.Fatal(err)
	}
	plat, consts := target.Platform, target.Constants
	fmt.Printf("platform %s: compute roof %.0f GF/s, memory roof %.0f GB/s, balance %.1f FpB\n",
		plat.Name, consts.PeakGFlops, consts.PeakGBs, consts.BtDRAM)

	// 3. Compile: Pluto tiling, PolyUFC-CM, characterization, cap search.
	// The kernel will run in a steady-state loop (step 4), so the one-time
	// cap-switch cost amortizes: disable the single-invocation
	// profitability gate.
	cfg := core.DefaultConfig(target)
	cfg.AmortizeFactor = 0
	res, err := core.Compile(mod, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Reports {
		fmt.Printf("nest %s: OI %.1f FpB -> %s, uncore cap %.1f GHz (tiled=%v, %d threads)\n",
			r.Label, r.OI, r.Class, r.CapGHz, r.Tiled, r.Threads)
	}

	// 4. Execute on the machine: baseline at the driver default vs the
	// capped program. The kernel is invoked repeatedly (a steady-state
	// inference loop) so the one-time cap-switch latency amortizes, as in
	// the paper's workloads.
	const reps = 200
	steady := &ir.Func{Name: "steady"}
	for _, op := range res.Module.Funcs[0].Ops {
		steady.Ops = append(steady.Ops, op)
	}
	for r := 1; r < reps; r++ {
		for _, op := range res.Module.Funcs[0].Ops {
			if nest, ok := op.(*ir.Nest); ok {
				steady.Ops = append(steady.Ops, nest)
			}
		}
	}

	m := hw.NewMachine(plat)
	m.SetUncoreCap(plat.UncoreMax)
	var base hw.RunResult
	for _, op := range steady.Ops {
		if nest, ok := op.(*ir.Nest); ok {
			r, err := m.RunNest(nest)
			if err != nil {
				log.Fatal(err)
			}
			base.Seconds += r.Seconds
			base.PkgJoules += r.PkgJoules
		}
	}
	base.EDP = base.PkgJoules * base.Seconds

	capped, err := m.RunFunc(steady)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (uncore %.1f GHz): %.3f ms, %.3f J, EDP %.3g\n",
		plat.UncoreMax, base.Seconds*1e3, base.PkgJoules, base.EDP)
	fmt.Printf("polyufc capped:            %.3f ms, %.3f J, EDP %.3g (%+.1f%% EDP)\n",
		capped.Seconds*1e3, capped.PkgJoules, capped.EDP,
		100*(1-capped.EDP/base.EDP))
}
