module polyufc

go 1.22
